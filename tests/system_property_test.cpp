// Cross-application system properties: the design-rule ladder's guarantees
// hold for every application (parameterized over all three), descriptors
// are behaviourally equivalent to the plans they serialize, and the
// staleness bound actually throttles writers.
#include <gtest/gtest.h>

#include <memory>

#include "apps/gridviz/gridviz.hpp"
#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "component/descriptor.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"

namespace mutsvc::core {
namespace {

using stats::ClientGroup;

/// App registry for parameterized suites.
struct AppCase {
  const char* name;
  apps::AppDriver (*make)();
  HarnessCalibration (*calibrate)();
};

apps::AppDriver make_petstore() {
  static apps::petstore::PetStoreApp app;
  return app.driver();
}
apps::AppDriver make_rubis() {
  static apps::rubis::RubisApp app;
  return app.driver();
}
apps::AppDriver make_gridviz() {
  static apps::gridviz::GridVizApp app;
  return app.driver();
}
HarnessCalibration cal_petstore() { return petstore_calibration(); }
HarnessCalibration cal_rubis() { return rubis_calibration(); }
HarnessCalibration cal_gridviz() {
  HarnessCalibration cal;
  cal.testbed.db_colocated = true;
  return cal;
}

const AppCase kApps[] = {
    {"petstore", &make_petstore, &cal_petstore},
    {"rubis", &make_rubis, &cal_rubis},
    {"gridviz", &make_gridviz, &cal_gridviz},
};

std::unique_ptr<Experiment> run(const AppCase& c, ConfigLevel level, double seconds = 500,
                                double warmup = 100) {
  apps::AppDriver driver = c.make();
  ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::Duration::seconds(seconds);
  spec.warmup = sim::Duration::seconds(warmup);
  auto exp = std::make_unique<Experiment>(driver, spec, c.calibrate());
  exp->run();
  return exp;
}

class EveryApp : public ::testing::TestWithParam<AppCase> {};

TEST_P(EveryApp, FinalConfigurationNeverWorseThanCentralizedForRemoteClients) {
  const AppCase& c = GetParam();
  auto centralized = run(c, ConfigLevel::kCentralized);
  auto final_cfg = run(c, ConfigLevel::kAsyncUpdates);
  apps::AppDriver driver = c.make();
  for (const std::string& pattern : {driver.browser_pattern, driver.writer_pattern}) {
    const double before = centralized->results().pattern_mean_ms(pattern, ClientGroup::kRemote);
    const double after = final_cfg->results().pattern_mean_ms(pattern, ClientGroup::kRemote);
    EXPECT_LT(after, before) << pattern;
  }
}

TEST_P(EveryApp, BlockingPushIsZeroStalenessEverywhere) {
  const AppCase& c = GetParam();
  auto exp = run(c, ConfigLevel::kQueryCaching);  // blocking-push rung
  EXPECT_EQ(exp->runtime().consistency().stale_reads(), 0u) << c.name;
  EXPECT_GT(exp->runtime().consistency().reads(), 0u);
}

TEST_P(EveryApp, AsyncRunsDrainAllUpdates) {
  const AppCase& c = GetParam();
  auto exp = run(c, ConfigLevel::kAsyncUpdates);
  EXPECT_TRUE(exp->runtime().updates_quiescent()) << c.name;
  EXPECT_EQ(exp->runtime().failed_pushes(), 0u);
  EXPECT_EQ(exp->dropped_requests(), 0u);
}

TEST_P(EveryApp, UtilizationStaysInPaperBands) {
  const AppCase& c = GetParam();
  auto exp = run(c, ConfigLevel::kCentralized);
  EXPECT_LT(exp->cpu_utilization(exp->nodes().main_server), 0.40) << c.name;
  if (exp->nodes().db_node != exp->nodes().main_server) {
    // §3.1's <5% DB bound only applies when the DB has its own workstation;
    // co-located databases share the main server's (bounded above) CPUs.
    EXPECT_LT(exp->cpu_utilization(exp->nodes().db_node), 0.06) << c.name;
  }
}

TEST_P(EveryApp, DescriptorRoundTripIsBehaviourallyEquivalent) {
  const AppCase& c = GetParam();
  // Run rung 5 directly.
  auto direct = run(c, ConfigLevel::kAsyncUpdates, 300, 60);

  // Serialize its plan, parse it back, run through custom_plan.
  apps::AppDriver driver = c.make();
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(300);
  spec.warmup = sim::sec(60);
  const std::string text = comp::serialize_descriptor(direct->runtime().plan(),
                                                      direct->network().topology());
  spec.custom_plan = [&text](const TestbedNodes&) -> comp::DeploymentPlan {
    // Parse against a scratch topology with identical (deterministic) names.
    static sim::Simulator scratch_sim;
    static net::Topology* scratch = nullptr;
    if (scratch == nullptr) {
      scratch = new net::Topology{scratch_sim};
      TestbedConfig cfg;
      cfg.db_colocated = true;
      (void)build_testbed(*scratch, cfg);
    }
    return comp::parse_descriptor(text, *scratch);
  };
  // NOTE: parse against the experiment's own topology would be cleaner; we
  // rely on deterministic node-id assignment, verified below.
  auto via_descriptor = std::make_unique<Experiment>(driver, spec, c.calibrate());
  via_descriptor->run();

  const double a =
      direct->results().pattern_mean_ms(driver.browser_pattern, ClientGroup::kRemote);
  const double b =
      via_descriptor->results().pattern_mean_ms(driver.browser_pattern, ClientGroup::kRemote);
  EXPECT_DOUBLE_EQ(a, b) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Apps, EveryApp, ::testing::ValuesIn(kApps),
                         [](const ::testing::TestParamInfo<AppCase>& info) {
                           return std::string{info.param.name};
                         });

TEST(StalenessBoundTest, TightBoundThrottlesBurstWriters) {
  // Pet Store with a staleness bound of 1: commits must occasionally stall
  // waiting for the slowest replica to drain.
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(600);
  spec.warmup = sim::sec(60);
  spec.custom_plan = [&app](const TestbedNodes& nodes) {
    auto plan = build_plan(app.application(), app.metadata(), nodes,
                           ConfigLevel::kAsyncUpdates);
    plan.set_staleness_bound(1);
    return plan;
  };
  Experiment exp{app.driver(), spec, petstore_calibration()};
  exp.run();
  EXPECT_GT(exp.runtime().async_publishes(), 0u);
  // The tight bound forces waits whenever two commits land within one
  // propagation window (~100ms) of each other.
  EXPECT_GT(exp.runtime().bounded_waits(), 0u);
  EXPECT_TRUE(exp.runtime().updates_quiescent());
}

}  // namespace
}  // namespace mutsvc::core

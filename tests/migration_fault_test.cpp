// Migration × fault interaction battery (ISSUE 10): a live migration that
// collides with a WAN cut, message loss, or a crash-restart of the target
// must either complete or roll back *cleanly* — the old binding stays
// authoritative, the target's pre-existing replica memberships and warm
// cache survive, and no replica entry ever regresses to an older version.
//
// Regression coverage: the rollback path originally stripped the target's
// replica memberships unconditionally, so a failed migration onto an edge
// that legitimately held replicas *before* the migration (the ladder's
// normal shape) would silently de-replicate that healthy site and wipe its
// warm cache. Rollback now undoes only the memberships the migration itself
// added; PartitionDuringTransfer asserts the pre-existing state survives.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "cache/read_only_cache.hpp"
#include "component/migration.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "net/faults.hpp"

namespace mutsvc {
namespace {

using comp::MigrationRequest;

const std::vector<std::string> kComponents{"Catalog"};
const std::vector<std::string> kEntities{"Category", "Product", "Item", "Inventory"};

[[nodiscard]] sim::Task<void> run_migration(comp::MigrationManager& m, MigrationRequest req, bool* out) {
  const bool ok = co_await m.migrate(std::move(req));
  if (out != nullptr) *out = ok;
}

core::ExperimentSpec base_spec() {
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(30);
  spec.placement.enabled = true;
  return spec;
}

/// Node handles of the testbed an Experiment with `base_spec()` will build.
/// The topology is deterministic, so a throwaway construction (never run)
/// yields the ids a FaultPlan needs before the real Experiment exists.
core::TestbedNodes probe_nodes() {
  apps::petstore::PetStoreApp app;
  core::Experiment probe{app.driver(), base_spec(), core::petstore_calibration()};
  return probe.nodes();
}

void schedule_migration(core::Experiment& exp, sim::Duration at, net::NodeId from,
                        net::NodeId to, bool move_query_cache, bool* out) {
  exp.simulator().schedule_at(
      sim::SimTime::origin() + at, [&exp, from, to, move_query_cache, out] {
        MigrationRequest req;
        req.from = from;
        req.to = to;
        req.components = kComponents;
        req.entities = kEntities;
        req.move_query_cache = move_query_cache;
        exp.simulator().spawn(run_migration(*exp.migrator(), std::move(req), out));
      });
}

void expect_conservation(core::Experiment& exp) {
  const auto& r = exp.results();
  EXPECT_GT(exp.requests_issued(), 0u);
  EXPECT_EQ(exp.requests_issued(),
            r.total_samples() + r.failures() + r.discarded_samples() + exp.requests_in_flight())
      << "issued=" << exp.requests_issued() << " samples=" << r.total_samples()
      << " failures=" << r.failures() << " discarded=" << r.discarded_samples()
      << " in_flight=" << exp.requests_in_flight();
}

TEST(MigrationFaultTest, PartitionDuringTransferRollsBackAndPreservesTargetState) {
  // The *source* edge is partitioned off just before the migration (both
  // its WAN link and its client LAN — a lone link cut would reroute
  // through the clients' direct hub link), so the bulk state transfer
  // edge0 -> edge1 has no route and the migration must roll back: binding
  // untouched, gates reopened, and — the regression this test pins —
  // edge1's pre-existing replica memberships, query cache, and warm
  // entries all survive, with no entry regressing to an older version.
  const core::TestbedNodes ids = probe_nodes();
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec = base_spec();
  spec.fault_plan.partitions.push_back(
      {{ids.edge_servers[0]}, sim::sec(58), sim::sec(15)});
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  const net::NodeId e0 = exp.nodes().edge_servers[0];
  const net::NodeId e1 = exp.nodes().edge_servers[1];
  ASSERT_EQ(e0, ids.edge_servers[0]);

  bool ok = true;
  schedule_migration(exp, sim::sec(60), e0, e1, /*move_query_cache=*/true, &ok);

  // Capture edge1's warm replica state just before the doomed migration.
  std::map<std::int64_t, std::uint64_t> pre_versions;
  exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(59), [&] {
    for (const auto& [pk, entry] : exp.runtime().ro_cache(e1, "Item").snapshot()) {
      pre_versions[pk] = entry.version;
    }
  });

  exp.run();

  EXPECT_FALSE(ok);
  EXPECT_EQ(exp.migrator()->started(), 1u);
  EXPECT_EQ(exp.migrator()->rolled_back(), 1u);
  EXPECT_EQ(exp.migrator()->completed(), 0u);
  EXPECT_FALSE(exp.migrator()->in_progress());

  // Old binding stays authoritative: no flip ever became visible.
  EXPECT_EQ(exp.bindings()->version("Catalog"), 0u);
  EXPECT_EQ(exp.bindings()->flips(), 0u);
  EXPECT_EQ(exp.runtime().forwarded_calls(), 0u);

  // Regression: edge1 held these replicas *before* the migration; rollback
  // must not strip the membership, drop its query cache, or wipe the warm
  // entries.
  for (const std::string& entity : kEntities) {
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e1)) << entity;
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e0)) << entity;
  }
  EXPECT_TRUE(exp.runtime().plan().has_query_cache(e1));
  EXPECT_GT(pre_versions.size(), 0u);
  std::size_t still_present = 0;
  for (const auto& [pk, entry] : exp.runtime().ro_cache(e1, "Item").snapshot()) {
    auto it = pre_versions.find(pk);
    if (it == pre_versions.end()) continue;
    ++still_present;
    // Live pushes may have advanced an entry, but nothing regresses.
    EXPECT_GE(entry.version, it->second) << "pk " << pk;
  }
  EXPECT_EQ(still_present, pre_versions.size());

  // The run conserves every request even with the WAN cut (cut-off calls
  // fail; they do not vanish).
  expect_conservation(exp);
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);
}

TEST(MigrationFaultTest, TotalLossDuringTransferRollsBack) {
  // 100% message loss on the *target* edge's WAN link: the source's caches
  // warm normally (so the transfer genuinely ships a snapshot), but the
  // transfer RMI is lost crossing hub -> edge1 (a DeliveryError raised at
  // the would-be delivery time) and the migration rolls back. Service on
  // the unaffected islands keeps running and the run still conserves every
  // request.
  const core::TestbedNodes ids = probe_nodes();
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec = base_spec();
  spec.fault_plan.link_loss.push_back({ids.edge_servers[1], ids.wan_hub, 1.0});
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  const net::NodeId e0 = exp.nodes().edge_servers[0];
  const net::NodeId e1 = exp.nodes().edge_servers[1];

  bool ok = true;
  schedule_migration(exp, sim::sec(60), e0, e1, /*move_query_cache=*/false, &ok);
  exp.run();

  EXPECT_FALSE(ok);
  EXPECT_EQ(exp.migrator()->rolled_back(), 1u);
  EXPECT_EQ(exp.migrator()->completed(), 0u);
  EXPECT_EQ(exp.bindings()->version("Catalog"), 0u);
  for (const std::string& entity : kEntities) {
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e0)) << entity;
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e1)) << entity;
  }
  expect_conservation(exp);
  // The cut island's pages fail; the other two groups keep sampling.
  EXPECT_GT(exp.results().total_samples(), 0u);
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);
}

TEST(MigrationFaultTest, TargetCrashRollsBackThenRetrySucceeds) {
  // The migration target crashes just before the transfer and restarts
  // with cold caches. The first migration rolls back cleanly; a retry
  // after the restart completes end to end, re-ships warm state, and
  // retires the old site.
  const core::TestbedNodes ids = probe_nodes();
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec = base_spec();
  spec.duration = sim::sec(150);
  spec.fault_plan.crashes.push_back({ids.edge_servers[1], sim::sec(59), sim::sec(8)});
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  const net::NodeId e0 = exp.nodes().edge_servers[0];
  const net::NodeId e1 = exp.nodes().edge_servers[1];

  bool first = true;
  bool second = false;
  schedule_migration(exp, sim::sec(60), e0, e1, /*move_query_cache=*/false, &first);
  schedule_migration(exp, sim::sec(100), e0, e1, /*move_query_cache=*/false, &second);
  exp.run();

  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_EQ(exp.migrator()->started(), 2u);
  EXPECT_EQ(exp.migrator()->rolled_back(), 1u);
  EXPECT_EQ(exp.migrator()->completed(), 1u);
  EXPECT_EQ(exp.migrator()->refused(), 0u);
  ASSERT_NE(exp.fault_injector(), nullptr);
  EXPECT_EQ(exp.fault_injector()->crashes(), 1u);
  EXPECT_EQ(exp.fault_injector()->restarts(), 1u);

  // The retry flipped the binding exactly once and moved the replica set.
  EXPECT_EQ(exp.bindings()->version("Catalog"), 1u);
  EXPECT_EQ(exp.bindings()->flips(), 1u);
  EXPECT_GT(exp.migrator()->entries_transferred(), 0u);
  for (const std::string& entity : kEntities) {
    EXPECT_TRUE(exp.runtime().plan().has_ro_replica(entity, e1)) << entity;
    EXPECT_FALSE(exp.runtime().plan().has_ro_replica(entity, e0)) << entity;
  }

  expect_conservation(exp);
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);
}

}  // namespace
}  // namespace mutsvc

// Property battery for the scale-out data tier (ISSUE 5): over seeded
// random inputs, (1) the ShardRouter is a pure deterministic function of
// (key, shard_count), (2) hash partitioning is total and disjoint — every
// row is served by exactly one shard and fan-out slices account for every
// row and byte exactly once — and (3) the harness conserves requests
// (issued == samples + failures + discarded) across the whole config
// ladder × shard counts × coalescing.
//
// Test inputs come from fixed-seed host-side generators (never sim-time
// randomness): simlint:allow-file(raw-random)
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "db/database.hpp"
#include "db/query.hpp"
#include "db/shard.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc {
namespace {

using db::Query;
using db::ShardRouter;

// --- Router determinism ------------------------------------------------------

TEST(ShardRouterTest, ZeroShardsThrows) {
  EXPECT_THROW(ShardRouter{0}, std::invalid_argument);
}

TEST(ShardRouterTest, SingleShardMapsEveryKeyToZero) {
  ShardRouter r{1};
  std::mt19937_64 rng{0xfeedULL};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(r.shard_of(static_cast<std::int64_t>(rng())), 0u);
  }
  EXPECT_EQ(r.shard_of(-1), 0u);
  EXPECT_TRUE(r.single());
}

TEST(ShardRouterTest, SameKeySameShardAcrossInstancesAndRuns) {
  // The mapping must be a pure function of (key, shard_count): two
  // independently constructed routers agree on every key, and re-querying
  // the same router never changes the answer.
  for (std::size_t shards : {2u, 3u, 5u, 8u, 16u}) {
    ShardRouter a{shards};
    ShardRouter b{shards};
    std::mt19937_64 rng{0x5eedULL + shards};
    for (int i = 0; i < 5000; ++i) {
      const auto key = static_cast<std::int64_t>(rng());
      const std::size_t s = a.shard_of(key);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, b.shard_of(key));
      EXPECT_EQ(s, a.shard_of(key));  // idempotent
    }
  }
}

TEST(ShardRouterTest, PinnedHashValuesNeverDrift) {
  // Literal expectations catch any accidental change to the splitmix64
  // finalizer or the modulus: rebalancing the whole key space would break
  // the shards=1 golden equivalence far less visibly than this.
  const std::int64_t keys[] = {0, 1, 2, 7, 42, 1000, 123456789, -1};
  const std::size_t want2[] = {1, 1, 0, 1, 1, 0, 1, 0};
  const std::size_t want3[] = {1, 2, 1, 0, 1, 1, 2, 2};
  const std::size_t want5[] = {0, 0, 0, 2, 3, 1, 2, 1};
  const std::size_t want8[] = {7, 1, 6, 7, 5, 0, 1, 0};
  ShardRouter r2{2}, r3{3}, r5{5}, r8{8};
  for (std::size_t i = 0; i < std::size(keys); ++i) {
    EXPECT_EQ(r2.shard_of(keys[i]), want2[i]) << "key " << keys[i];
    EXPECT_EQ(r3.shard_of(keys[i]), want3[i]) << "key " << keys[i];
    EXPECT_EQ(r5.shard_of(keys[i]), want5[i]) << "key " << keys[i];
    EXPECT_EQ(r8.shard_of(keys[i]), want8[i]) << "key " << keys[i];
  }
}

TEST(ShardRouterTest, ConsecutiveKeysSpreadAcrossShards) {
  // The hash exists so the freshly-inserted "hot tail" of consecutive
  // primary keys does not stripe onto one shard: over any window of
  // consecutive keys, every shard owns a non-trivial fraction.
  for (std::size_t shards : {2u, 4u, 8u}) {
    ShardRouter r{shards};
    std::vector<std::size_t> counts(shards, 0);
    const int n = 4000;
    for (int k = 0; k < n; ++k) ++counts[r.shard_of(k)];
    for (std::size_t s = 0; s < shards; ++s) {
      const double frac = static_cast<double>(counts[s]) * static_cast<double>(shards) / n;
      EXPECT_GT(frac, 0.8) << "shard " << s << "/" << shards;
      EXPECT_LT(frac, 1.2) << "shard " << s << "/" << shards;
    }
  }
}

// --- Partition totality / disjointness ---------------------------------------

struct ShardedDb {
  sim::Simulator sim{1};
  net::Topology topo{sim};
  std::vector<net::NodeId> homes;
  std::unique_ptr<db::Database> db;

  explicit ShardedDb(std::size_t shards) {
    const net::NodeId app = topo.add_node("app", net::NodeRole::kAppServer);
    for (std::size_t s = 0; s < shards; ++s) {
      homes.push_back(
          topo.add_node("db-s" + std::to_string(s), net::NodeRole::kDatabaseServer));
      topo.add_link(app, homes.back(), sim::ms(0.2), 100e6);
    }
    db = std::make_unique<db::Database>(topo, homes);
  }
};

db::Row random_row(std::int64_t pk, std::mt19937_64& rng) {
  return db::Row{pk, static_cast<std::int64_t>(rng() % 50),
                 std::string(1 + rng() % 12, 'x'), 1.0 + static_cast<double>(rng() % 100)};
}

std::vector<db::Column> item_columns() {
  return {{"id", db::ColumnType::kInt},
          {"product_id", db::ColumnType::kInt},
          {"name", db::ColumnType::kText},
          {"price", db::ColumnType::kReal}};
}

TEST(ShardPartitionTest, EveryRowServedByExactlyOneShard) {
  // Totality + disjointness: for every populated primary key, the pk-class
  // statements (lookup / update / delete) all resolve to one defined owner
  // shard, that owner agrees with the router, and the per-shard key sets
  // partition the table (their union is everything, pairwise disjoint by
  // functionhood — asserted via exact counts).
  for (std::size_t shards : {2u, 3u, 5u, 8u}) {
    ShardedDb h{shards};
    h.db->create_table("item", item_columns());
    std::mt19937_64 rng{0xabcdULL * shards};
    std::set<std::int64_t> pks;
    while (pks.size() < 500) pks.insert(static_cast<std::int64_t>(rng() % 1000000));
    for (std::int64_t pk : pks) {
      h.db->execute_immediate(Query::insert("item", random_row(pk, rng)));
    }

    std::vector<std::set<std::int64_t>> per_shard(shards);
    for (std::int64_t pk : pks) {
      const auto lookup = h.db->single_shard(Query::pk_lookup("item", pk));
      const auto update = h.db->single_shard(Query::update("item", pk, "price", 2.0));
      const auto del = h.db->single_shard(Query::del("item", pk));
      ASSERT_TRUE(lookup.has_value());
      ASSERT_TRUE(update.has_value());
      ASSERT_TRUE(del.has_value());
      EXPECT_EQ(*lookup, h.db->router().shard_of(pk));
      EXPECT_EQ(*lookup, *update);
      EXPECT_EQ(*lookup, *del);
      ASSERT_LT(*lookup, shards);
      per_shard[*lookup].insert(pk);
    }
    // Union == all keys; per-shard sets are disjoint because shard_of is a
    // function, so the sizes summing to the total proves the partition.
    std::size_t total = 0;
    std::set<std::int64_t> uni;
    for (const auto& s : per_shard) {
      total += s.size();
      uni.insert(s.begin(), s.end());
    }
    EXPECT_EQ(total, pks.size());
    EXPECT_EQ(uni, pks);
  }
}

TEST(ShardPartitionTest, FanOutSlicesAccountForEveryRowAndByteOnce) {
  // Scan-class queries have no single home (nullopt) and instead partition
  // their result: each row lands in exactly the slice of the shard owning
  // its key, slice row counts sum to the result, and slice bytes sum to the
  // payload plus one 16-byte envelope per shard.
  for (std::size_t shards : {1u, 2u, 5u, 8u}) {
    ShardedDb h{shards};
    auto& t = h.db->create_table("item", item_columns());
    t.create_index("product_id");
    std::mt19937_64 rng{0x1234ULL + shards};
    for (std::int64_t pk = 1; pk <= 400; ++pk) {
      db::Row r = random_row(pk, rng);
      r[1] = std::int64_t{7};  // one big finder bucket
      t.insert(std::move(r));
    }

    const Query finder = Query::finder("item", "product_id", std::int64_t{7});
    if (shards == 1) {
      EXPECT_EQ(h.db->single_shard(finder), std::optional<std::size_t>{0});
    } else {
      EXPECT_FALSE(h.db->single_shard(finder).has_value());
    }

    const db::QueryResult res = h.db->execute_immediate(finder);
    ASSERT_EQ(res.rows.size(), 400u);
    const auto slices = h.db->partition_result(res);
    ASSERT_EQ(slices.size(), shards);

    std::vector<std::size_t> expect_rows(shards, 0);
    net::Bytes payload = 0;
    for (const auto& row : res.rows) {
      ++expect_rows[h.db->router().shard_of(db::as_int(row[0]))];
      payload += db::wire_size(row);
    }
    std::size_t rows_total = 0;
    net::Bytes bytes_total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(slices[s].rows, expect_rows[s]) << "shard " << s << "/" << shards;
      rows_total += slices[s].rows;
      bytes_total += slices[s].bytes;
    }
    EXPECT_EQ(rows_total, res.rows.size());
    EXPECT_EQ(bytes_total, payload + static_cast<net::Bytes>(16 * shards));
  }
}

TEST(ShardPartitionTest, QueryResultsIndependentOfShardCount) {
  // The tables stay logically unified: the same battery of queries returns
  // identical rows whether the tier runs 1, 3, or 8 shards.
  std::vector<std::unique_ptr<ShardedDb>> dbs;
  for (std::size_t shards : {1u, 3u, 8u}) {
    auto h = std::make_unique<ShardedDb>(shards);
    auto& t = h->db->create_table("item", item_columns());
    t.create_index("product_id");
    std::mt19937_64 rng{0x77ULL};  // identical population in every instance
    for (std::int64_t pk = 1; pk <= 300; ++pk) t.insert(random_row(pk, rng));
    dbs.push_back(std::move(h));
  }
  std::mt19937_64 qrng{0x99ULL};
  for (int i = 0; i < 200; ++i) {
    Query q;
    switch (qrng() % 3) {
      case 0: q = Query::pk_lookup("item", 1 + static_cast<std::int64_t>(qrng() % 300)); break;
      case 1:
        q = Query::finder("item", "product_id", static_cast<std::int64_t>(qrng() % 50));
        break;
      default: q = Query::keyword_search("item", "name", "xxx"); break;
    }
    const db::QueryResult base = dbs[0]->db->execute_immediate(q);
    for (std::size_t d = 1; d < dbs.size(); ++d) {
      const db::QueryResult got = dbs[d]->db->execute_immediate(q);
      ASSERT_EQ(got.rows, base.rows) << "query " << q.cache_key();
      EXPECT_EQ(got.affected, base.affected);
    }
  }
}

// --- Request conservation across the config ladder ---------------------------

struct ConservationCase {
  const char* name;
  core::ConfigLevel level;
  std::size_t shards;
  double coalesce_ms;  // 0 = per-transaction publishes (the paper's mode)
};

const ConservationCase kLadder[] = {
    {"centralized_s1", core::ConfigLevel::kCentralized, 1, 0},
    {"facade_s2", core::ConfigLevel::kRemoteFacade, 2, 0},
    {"state_cache_s3", core::ConfigLevel::kStatefulComponentCaching, 3, 0},
    {"query_cache_s5", core::ConfigLevel::kQueryCaching, 5, 0},
    {"async_s8", core::ConfigLevel::kAsyncUpdates, 8, 0},
    {"async_s4_coalesced", core::ConfigLevel::kAsyncUpdates, 4, 20.0},
};

class ConservationLadder : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(ConservationLadder, IssuedEqualsCompletedPlusFailed) {
  // Every request the open-loop generator issues is counted exactly once:
  // as a post-warm-up sample, a post-warm-up failure, or a discarded
  // warm-up observation. Sharding and coalescing must not create or lose
  // requests anywhere on the ladder. Specs are randomized from a fixed
  // seed so each ladder rung exercises a different (seed, rate, duration).
  // (The end-of-run rule counts requests at issue time, so the tail a
  // truncated run leaves awaiting responses shows up as in_flight.)
  const ConservationCase& c = GetParam();
  sim::RngStream rng = sim::RngStream{0xC0817ULL}.fork(c.name);

  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = c.level;
  spec.shard.shards = c.shards;
  spec.shard.coalesce_quantum = sim::Duration::millis(c.coalesce_ms);
  spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 30));
  spec.total_request_rate = rng.uniform(18.0, 36.0);
  spec.duration = sim::Duration::seconds(rng.uniform(100.0, 140.0));
  spec.warmup = sim::sec(30);
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  const auto& r = exp.results();
  EXPECT_GT(exp.requests_issued(), 0u);
  EXPECT_EQ(exp.requests_issued(),
            r.total_samples() + r.failures() + r.discarded_samples() + exp.requests_in_flight())
      << c.name << ": issued=" << exp.requests_issued()
      << " samples=" << r.total_samples() << " failures=" << r.failures()
      << " discarded=" << r.discarded_samples()
      << " in_flight=" << exp.requests_in_flight();
  // Fault-free ladder runs complete every request.
  EXPECT_EQ(r.failures(), 0u);
  EXPECT_EQ(exp.dropped_requests(), 0u);
  // Async rungs must drain: coalescing holds batches at most one quantum
  // past the last write, and the run end is far past the last commit's
  // propagation window.
  if (c.level == core::ConfigLevel::kAsyncUpdates) {
    EXPECT_TRUE(exp.runtime().updates_quiescent()) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ladder, ConservationLadder, ::testing::ValuesIn(kLadder),
                         [](const ::testing::TestParamInfo<ConservationCase>& info) {
                           return std::string{info.param.name};
                         });

TEST(ConservationRubisTest, HoldsForRubisUnderShardsAndCoalescing) {
  // Second application, harder write mix: same identity.
  apps::rubis::RubisApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.shard.shards = 3;
  spec.shard.coalesce_quantum = sim::Duration::millis(15);
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(30);
  spec.seed = 7;
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();
  const auto& r = exp.results();
  EXPECT_GT(exp.requests_issued(), 0u);
  EXPECT_EQ(exp.requests_issued(),
            r.total_samples() + r.failures() + r.discarded_samples() + exp.requests_in_flight());
  EXPECT_TRUE(exp.runtime().updates_quiescent());
}

}  // namespace
}  // namespace mutsvc

// Deeper database coverage: id allocation, wire sizing, cost laws, fetch
// batching sweeps, aggregate parameters.
#include <gtest/gtest.h>

#include "db/database.hpp"
#include "db/jdbc.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::db {
namespace {

using sim::Duration;
using sim::ms;
using sim::Simulator;
using sim::Task;

struct Fixture {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId app, dbn;
  net::Network net{sim, topo, Duration::zero()};
  std::unique_ptr<Database> db;

  Fixture() {
    app = topo.add_node("app", net::NodeRole::kAppServer);
    dbn = topo.add_node("db", net::NodeRole::kDatabaseServer);
    topo.add_link(app, dbn, ms(0.2), 100e6);
    db = std::make_unique<Database>(topo, dbn);
    auto& t = db->create_table("orders", {{"id", ColumnType::kInt},
                                          {"account", ColumnType::kInt},
                                          {"note", ColumnType::kText}});
    t.insert(Row{std::int64_t{10}, std::int64_t{1}, std::string{"seed"}});
  }
};

TEST(DbExtraTest, AllocateIdStartsAboveExistingMax) {
  Fixture f;
  EXPECT_EQ(f.db->allocate_id("orders"), 11);
  EXPECT_EQ(f.db->allocate_id("orders"), 12);
}

TEST(DbExtraTest, AllocateIdSurvivesConcurrentInserts) {
  Fixture f;
  const std::int64_t a = f.db->allocate_id("orders");
  f.db->execute_immediate(Query::insert("orders", Row{a, std::int64_t{2}, std::string{"x"}}));
  const std::int64_t b = f.db->allocate_id("orders");
  EXPECT_GT(b, a);
  f.db->execute_immediate(Query::insert("orders", Row{b, std::int64_t{3}, std::string{"y"}}));
  EXPECT_EQ(f.db->table("orders").row_count(), 3u);
}

TEST(DbExtraTest, AllocateIdOnEmptyTableStartsAtOne) {
  Fixture f;
  f.db->create_table("empty", {{"id", ColumnType::kInt}});
  EXPECT_EQ(f.db->allocate_id("empty"), 1);
}

TEST(DbExtraTest, WireSizeReflectsContent) {
  EXPECT_EQ(wire_size(Value{std::int64_t{1}}), 8);
  EXPECT_EQ(wire_size(Value{1.5}), 8);
  EXPECT_EQ(wire_size(Value{std::string{"abcd"}}), 8);  // 4 chars + 4 len
  Row r{std::int64_t{1}, std::string{"abcd"}};
  EXPECT_EQ(wire_size(r), 16);
}

TEST(DbExtraTest, QueryResultWireBytesGrowWithRows) {
  QueryResult small;
  small.rows = {Row{std::int64_t{1}}};
  QueryResult large;
  for (int i = 0; i < 100; ++i) large.rows.push_back(Row{std::int64_t{i}});
  EXPECT_GT(large.wire_bytes(), small.wire_bytes());
}

TEST(DbExtraTest, CostModelOrdersQueryKinds) {
  Fixture f;
  const auto& m = f.db->cost_model();
  EXPECT_LT(m.pk_lookup, m.finder_base);
  EXPECT_LT(m.finder_base, m.aggregate_base);
  EXPECT_LT(m.aggregate_base, m.keyword_base);
  // Per-row terms dominate for huge result sets.
  Query finder = Query::finder("orders", "account", std::int64_t{1});
  EXPECT_GT(f.db->cost_of(finder, 10000), f.db->cost_of(Query::keyword_search("orders", "note", "x"), 0));
}

TEST(DbExtraTest, AggregateReceivesParams) {
  Fixture f;
  f.db->register_aggregate("echo_param", [](Database&, const std::vector<Value>& params) {
    return std::vector<Row>{Row{params.at(0)}};
  });
  auto res = f.db->execute_immediate(Query::aggregate("echo_param", {std::int64_t{42}}));
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(as_int(res.rows[0][0]), 42);
}

TEST(DbExtraTest, DeleteMissingRowAffectsZero) {
  Fixture f;
  auto res = f.db->execute_immediate(Query::del("orders", 999));
  EXPECT_EQ(res.affected, 0);
  EXPECT_EQ(f.db->execute_immediate(Query::del("orders", 10)).affected, 1);
}

/// Fetch-batching law: extra round trips = ceil(rows/fetch) - 1.
class FetchBatching : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FetchBatching, RoundTripsMatchTheory) {
  const auto [rows, fetch_size] = GetParam();
  Fixture f;
  auto& t = f.db->create_table("wide", {{"id", ColumnType::kInt}, {"g", ColumnType::kInt}});
  for (int i = 0; i < rows; ++i) t.insert(Row{std::int64_t{i}, std::int64_t{0}});
  t.create_index("g");

  JdbcConfig cfg;
  cfg.fetch_size = fetch_size;
  JdbcClient jdbc{f.net, *f.db, f.app, cfg};
  f.sim.spawn([](JdbcClient& j) -> Task<void> {
    (void)co_await j.execute(Query::finder("wide", "g", std::int64_t{0}));
  }(jdbc));
  f.sim.run_until();

  const int batches = rows <= fetch_size ? 1 : (rows + fetch_size - 1) / fetch_size;
  EXPECT_EQ(jdbc.fetch_round_trips(), static_cast<std::uint64_t>(batches - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FetchBatching,
                         ::testing::Values(std::make_tuple(1, 10), std::make_tuple(10, 10),
                                           std::make_tuple(11, 10), std::make_tuple(30, 10),
                                           std::make_tuple(30, 1), std::make_tuple(100, 16)));

TEST(DbExtraTest, DbCpuStaysUnderPaperBoundDuringQueryStorm) {
  Fixture f;
  // 30 pk lookups/s for 100s at 0.4ms each on 2 CPUs => ~0.6% utilization.
  f.sim.spawn([](Fixture& f) -> Task<void> {
    for (int i = 0; i < 3000; ++i) {
      (void)co_await f.db->execute(Query::pk_lookup("orders", 10));
      co_await f.sim.wait(ms(33));
    }
  }(f));
  f.sim.run_until();
  EXPECT_LT(f.topo.node(f.dbn).cpu->utilization(), 0.05);  // §3.1's <5%
}

// --- secondary-index stability across erase/update paths ---------------------
//
// The index stores direct pointers into the row storage (stable std::map
// nodes, in-place assignment); these regressions pin the invariant across
// every mutation path — the original suite only exercised insert.

Table indexed_table() {
  Table t{"item", {{"id", ColumnType::kInt},
                   {"product", ColumnType::kInt},
                   {"name", ColumnType::kText}}};
  t.create_index("product");
  for (std::int64_t pk = 1; pk <= 6; ++pk) {
    t.insert(Row{pk, std::int64_t{pk % 2}, std::string{"n"} + std::to_string(pk)});
  }
  return t;  // products: odd pks -> 1, even pks -> 0
}

TEST(TableIndexTest, EraseRemovesOnlyThatRowFromSharedBucket) {
  Table t = indexed_table();
  ASSERT_EQ(t.find_equal("product", std::int64_t{1}).size(), 3u);  // pks 1,3,5
  EXPECT_TRUE(t.erase(3));
  const auto rows = t.find_equal("product", std::int64_t{1});
  ASSERT_EQ(rows.size(), 2u);
  // Surviving entries still dereference to valid, correct row content.
  EXPECT_EQ(as_int(rows[0][0]), 1);
  EXPECT_EQ(as_int(rows[1][0]), 5);
  EXPECT_EQ(as_text(rows[1][2]), "n5");
}

TEST(TableIndexTest, FullRowUpdateMovesIndexBucket) {
  Table t = indexed_table();
  // Move pk 2 from product 0 to product 9 via the full-row path.
  t.update(2, Row{std::int64_t{2}, std::int64_t{9}, std::string{"moved"}});
  EXPECT_EQ(t.find_equal("product", std::int64_t{0}).size(), 2u);  // pks 4,6
  const auto moved = t.find_equal("product", std::int64_t{9});
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(as_int(moved[0][0]), 2);
  EXPECT_EQ(as_text(moved[0][2]), "moved");  // pointer sees the new content
}

TEST(TableIndexTest, UpdateColumnOnIndexedColumnMovesBucket) {
  Table t = indexed_table();
  t.update_column(1, "product", std::int64_t{7});
  EXPECT_EQ(t.find_equal("product", std::int64_t{1}).size(), 2u);  // pks 3,5
  const auto moved = t.find_equal("product", std::int64_t{7});
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(as_int(moved[0][0]), 1);
}

TEST(TableIndexTest, UpdateColumnOnUnindexedColumnIsVisibleThroughIndex) {
  Table t = indexed_table();
  t.update_column(1, "name", std::string{"renamed"});
  bool seen = false;
  t.for_each_equal("product", std::int64_t{1}, [&](const Row& row) {
    if (as_int(row[0]) == 1) {
      seen = true;
      EXPECT_EQ(as_text(row[2]), "renamed");  // in-place read via index pointer
    }
  });
  EXPECT_TRUE(seen);
}

TEST(TableIndexTest, EraseThenReinsertSamePkReindexesCleanly) {
  Table t = indexed_table();
  EXPECT_TRUE(t.erase(4));
  t.insert(Row{std::int64_t{4}, std::int64_t{5}, std::string{"back"}});
  // Exactly one entry for pk 4, under the new value only.
  EXPECT_TRUE(t.find_equal("product", std::int64_t{0}).size() == 2);  // pks 2,6
  const auto rows = t.find_equal("product", std::int64_t{5});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(as_text(rows[0][2]), "back");
}

TEST(TableIndexTest, IndexCreatedAfterMutationsMatchesScan) {
  // Building an index over an already-mutated table agrees with a full
  // scan — and keeps agreeing after further mutations through every path.
  Table t{"item", {{"id", ColumnType::kInt},
                   {"product", ColumnType::kInt},
                   {"name", ColumnType::kText}}};
  for (std::int64_t pk = 1; pk <= 8; ++pk) {
    t.insert(Row{pk, std::int64_t{pk % 3}, std::string{"x"}});
  }
  t.update_column(1, "product", std::int64_t{2});
  (void)t.erase(6);
  t.create_index("product");
  for (std::int64_t v = 0; v <= 2; ++v) {
    const auto via_index = t.find_equal("product", Value{v});
    const std::size_t ci = t.column_index("product");
    const auto via_scan = t.scan([&](const Row& r) { return r[ci] == Value{v}; });
    EXPECT_EQ(via_index, via_scan) << "product " << v;
  }
}

TEST(TableIndexTest, FullRowUpdateValidatesColumnTypes) {
  // Regression for the audit's finding: update() must reject rows that
  // violate the schema exactly like insert() and update_column() do, not
  // install them (corrupting the typed index keys).
  Table t = indexed_table();
  EXPECT_THROW(t.update(1, Row{std::int64_t{1}, std::string{"oops"}, std::string{"n"}}),
               std::invalid_argument);
  EXPECT_THROW(t.update(1, Row{std::string{"pk?"}, std::int64_t{1}, std::string{"n"}}),
               std::invalid_argument);
  // The failed updates left row and index untouched.
  const auto rows = t.find_equal("product", std::int64_t{1});
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(as_text((*t.get(1))[2]), "n1");
}

}  // namespace
}  // namespace mutsvc::db

// The FSM load engine wired through the full experiment harness (ISSUE 9):
// conservation under the end-of-run rule, refusal for drivers without FSM
// models, bit-identical results under the windowed parallel executor, the
// Zipf hot-shard scenario, and arrival envelopes at the spec level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "workload/arrivals.hpp"

namespace mutsvc {
namespace {

using core::ConfigLevel;
using core::Experiment;
using core::ExperimentSpec;

ExperimentSpec fsm_spec() {
  ExperimentSpec spec;
  spec.level = ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(30);
  spec.seed = 11;
  spec.total_request_rate = 30.0;
  spec.fsm_load.enabled = true;
  return spec;
}

TEST(FsmExperimentTest, ClosedLoopRunConservesRequests) {
  apps::petstore::PetStoreApp app;
  core::Experiment exp{app.driver(), fsm_spec(), core::petstore_calibration()};
  exp.run();

  const auto& r = exp.results();
  EXPECT_GT(exp.requests_issued(), 0u);
  EXPECT_GT(r.total_samples(), 0u);
  EXPECT_EQ(exp.requests_issued(), r.total_samples() + r.failures() + r.rejections() +
                                       r.discarded_samples() + exp.requests_in_flight());
  EXPECT_EQ(exp.requests_issued(), exp.pages_started());
  EXPECT_GT(exp.sessions_started(), 0u);
  // The closed-loop population is sized like the coroutine driver: 30/s
  // over three groups with a 7s think -> 70 recurring sessions per group,
  // 210 resident until the end cutoff.
  EXPECT_EQ(exp.fsm_peak_live_sessions(), 210u);
  // Both usage patterns must flow through to the collector.
  EXPECT_GT(r.pattern_mean_ms("Browser", stats::ClientGroup::kLocal), 0.0);
  EXPECT_GT(r.pattern_mean_ms("Buyer", stats::ClientGroup::kLocal), 0.0);
}

TEST(FsmExperimentTest, RepeatRunsAreBitIdentical) {
  auto digest = [] {
    apps::petstore::PetStoreApp app;
    core::Experiment exp{app.driver(), fsm_spec(), core::petstore_calibration()};
    exp.run();
    const auto& r = exp.results();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    fold(exp.requests_issued());
    fold(exp.sessions_started());
    fold(r.total_samples());
    fold(static_cast<std::uint64_t>(r.pattern_mean_ms("Browser", stats::ClientGroup::kLocal) *
                                    1e6));
    fold(static_cast<std::uint64_t>(r.pattern_mean_ms("Buyer", stats::ClientGroup::kRemote) *
                                    1e6));
    return h;
  };
  EXPECT_EQ(digest(), digest());
}

TEST(FsmExperimentTest, ParallelDomainsLeaveResultsBitIdentical) {
  // The FSM engine lives in its group's client domain and records through
  // Simulator::sequenced, so the windowed parallel executor must reproduce
  // the sequential trajectory exactly.
  auto run_with = [](int workers) {
    apps::petstore::PetStoreApp app;
    ExperimentSpec spec = fsm_spec();
    spec.parallel_domains = workers;
    core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
    exp.run();
    const auto& r = exp.results();
    std::vector<double> digest;
    digest.push_back(static_cast<double>(exp.requests_issued()));
    digest.push_back(static_cast<double>(exp.sessions_started()));
    digest.push_back(static_cast<double>(r.total_samples()));
    digest.push_back(r.pattern_mean_ms("Browser", stats::ClientGroup::kLocal));
    digest.push_back(r.pattern_mean_ms("Browser", stats::ClientGroup::kRemote));
    digest.push_back(r.pattern_mean_ms("Buyer", stats::ClientGroup::kLocal));
    return digest;
  };
  EXPECT_EQ(run_with(0), run_with(2));
}

TEST(FsmExperimentTest, DriverWithoutModelsIsRefused) {
  apps::rubis::RubisApp app;
  ExperimentSpec spec = fsm_spec();
  core::Experiment exp{app.driver(), spec, core::rubis_calibration()};
  EXPECT_THROW(exp.run(), std::invalid_argument);
}

TEST(FsmExperimentTest, FsmLoadExcludesOpenLoopArrivals) {
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec = fsm_spec();
  spec.open_loop_arrivals = true;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  EXPECT_THROW(exp.run(), std::invalid_argument);
}

TEST(FsmExperimentTest, ArrivalEnvelopeDrivesSessionCounts) {
  // Diurnal session arrivals at the spec level: the number of sessions
  // started tracks the envelope's integral (split across groups and kinds
  // inside the harness, so the combined count is the whole integral).
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec = fsm_spec();
  spec.duration = sim::sec(240);
  spec.fsm_load.arrivals = workload::RateEnvelope::diurnal(1.0, 9.0, sim::sec(120));
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();
  const double expected =
      spec.fsm_load.arrivals.expected_count(sim::Duration::zero(), sim::sec(240));
  EXPECT_NEAR(static_cast<double>(exp.sessions_started()), expected, expected * 0.15);
  // The truncated run leaves exactly the awaiting-response tail resident:
  // every live session holds one in-flight request and nothing else.
  EXPECT_EQ(exp.fsm_live_sessions(), exp.requests_in_flight());
  const auto& r = exp.results();
  EXPECT_EQ(exp.requests_issued(), r.total_samples() + r.failures() + r.rejections() +
                                       r.discarded_samples() + exp.requests_in_flight());
}

TEST(FsmExperimentTest, ZipfSkewConcentratesWritesOnTheHotShard) {
  // zipf_s > 0 funnels item popularity onto rank 0 (item 1001001), so one
  // data-tier shard sees disproportionate load relative to a uniform run.
  auto hot_shard_share = [](double zipf_s) {
    apps::petstore::PetStoreApp app;
    ExperimentSpec spec = fsm_spec();
    // Remote facade: no state/query caches, so item reads actually reach
    // the data tier (the cache levels would absorb the hot head and erase
    // the very skew this scenario is about).
    spec.level = ConfigLevel::kRemoteFacade;
    spec.shard.shards = 4;
    // All browsers: the Item page carries 45% of the FSM's weight, so the
    // Zipf head dominates the data-tier traffic.
    spec.browser_fraction = 1.0;
    spec.fsm_load.zipf_s = zipf_s;
    core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
    exp.run();
    const std::size_t hot = exp.database().router().shard_of(1001001);
    double hot_util = 0.0;
    double total_util = 0.0;
    double max_other = 0.0;
    const auto& db_nodes = exp.nodes().db_nodes;
    for (std::size_t s = 0; s < db_nodes.size(); ++s) {
      const double u = exp.cpu_utilization(db_nodes[s]);
      total_util += u;
      if (s == hot) {
        hot_util = u;
      } else {
        max_other = std::max(max_other, u);
      }
    }
    struct Shares {
      double hot_share;
      bool hot_is_max;
    };
    return Shares{hot_util / total_util, hot_util > max_other};
  };
  const auto uniform = hot_shard_share(0.0);
  const auto skewed = hot_shard_share(2.0);
  // 4 shards: uniform load spreads ~25% each. Zipf(2) puts ~61% of *item*
  // draws on the hot key, but the item PK lookup is only one slice of each
  // page's data-tier work, so the hot shard's overall share lands near 29%
  // — clearly the maximum, several points above every sibling.
  EXPECT_NEAR(uniform.hot_share, 0.25, 0.01);
  EXPECT_GT(skewed.hot_share, uniform.hot_share + 0.03)
      << "uniform=" << uniform.hot_share << " skewed=" << skewed.hot_share;
  EXPECT_TRUE(skewed.hot_is_max) << "the hot key's shard must dominate under skew";
}

}  // namespace
}  // namespace mutsvc

#include <gtest/gtest.h>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::net {
namespace {

using sim::Duration;
using sim::ms;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

struct Harness {
  Simulator sim{1};
  Topology topo{sim};
  NodeId a, b, c;
  Network net{sim, topo, /*per_hop_overhead=*/Duration::zero()};

  Harness() {
    a = topo.add_node("a", NodeRole::kAppServer);
    b = topo.add_node("b", NodeRole::kAppServer);
    c = topo.add_node("c", NodeRole::kAppServer);
    topo.add_link(a, b, ms(100), 100e6);  // WAN
    topo.add_link(b, c, ms(0.2), 100e6);  // LAN
  }

  Duration timed(Task<void> t) {
    SimTime start = sim.now();
    bool done = false;
    sim.spawn([](Task<void> t, bool& d) -> Task<void> {
      co_await std::move(t);
      d = true;
    }(std::move(t), done));
    sim.run_until();
    EXPECT_TRUE(done);
    return sim.now() - start;
  }
};

TEST(TopologyTest, FindByName) {
  Harness h;
  EXPECT_EQ(h.topo.find("b"), h.b);
  EXPECT_THROW((void)h.topo.find("zzz"), std::invalid_argument);
}

TEST(TopologyTest, BadNodeIdThrows) {
  Harness h;
  EXPECT_THROW((void)h.topo.node(NodeId{99}), std::out_of_range);
}

TEST(TopologyTest, DirectPathLatency) {
  Harness h;
  EXPECT_EQ(h.topo.path_latency(h.a, h.b), ms(100));
  EXPECT_EQ(h.topo.rtt(h.a, h.b), ms(200));
}

TEST(TopologyTest, MultiHopRouting) {
  Harness h;
  EXPECT_EQ(h.topo.path_latency(h.a, h.c), ms(100.2));
  auto path = h.topo.path(h.a, h.c);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0]->from, h.a);
  EXPECT_EQ(path[0]->to, h.b);
  EXPECT_EQ(path[1]->from, h.b);
  EXPECT_EQ(path[1]->to, h.c);
}

TEST(TopologyTest, SelfPathIsEmpty) {
  Harness h;
  EXPECT_TRUE(h.topo.path(h.a, h.a).empty());
  EXPECT_EQ(h.topo.path_latency(h.a, h.a), Duration::zero());
}

TEST(TopologyTest, NoRouteThrows) {
  Simulator sim;
  Topology topo{sim};
  NodeId x = topo.add_node("x", NodeRole::kAppServer);
  NodeId y = topo.add_node("y", NodeRole::kAppServer);
  EXPECT_THROW((void)topo.path(x, y), std::runtime_error);
}

TEST(TopologyTest, RoutePrefersLowerLatency) {
  Simulator sim;
  Topology topo{sim};
  NodeId a = topo.add_node("a", NodeRole::kAppServer);
  NodeId b = topo.add_node("b", NodeRole::kAppServer);
  NodeId r = topo.add_node("r", NodeRole::kRouter);
  topo.add_link(a, b, ms(50));
  topo.add_link(a, r, ms(10));
  topo.add_link(r, b, ms(10));
  EXPECT_EQ(topo.path_latency(a, b), ms(20));
}

TEST(LinkTest, TransmissionTime) {
  Harness h;
  Link* l = h.topo.path(h.a, h.b)[0];
  // 1 MB over 100 Mbit/s = 8*2^20/1e8 s ≈ 83.9 ms.
  EXPECT_NEAR(l->transmission_time(1024 * 1024).as_millis(), 83.886, 0.01);
  EXPECT_EQ(l->transmission_time(0), Duration::zero());
}

TEST(NetworkTest, LoopbackIsFree) {
  Harness h;
  EXPECT_EQ(h.timed(h.net.deliver(h.a, h.a, 1000)), Duration::zero());
}

TEST(NetworkTest, OneWayDeliveryLatency) {
  Harness h;
  Duration d = h.timed(h.net.deliver(h.a, h.b, 1000));
  // 100ms propagation + 1000B/100Mbps = 0.08ms serialization.
  EXPECT_NEAR(d.as_millis(), 100.08, 0.01);
}

TEST(NetworkTest, MultiHopStoreAndForward) {
  Harness h;
  Duration d = h.timed(h.net.deliver(h.a, h.c, 1000));
  EXPECT_NEAR(d.as_millis(), 100.08 + 0.2 + 0.08, 0.02);
}

TEST(NetworkTest, BandwidthContentionQueues) {
  Harness h;
  // Two 10 Mbit messages on a 100 Mbit/s link: second waits for the first
  // to serialize.
  Bytes big = 10'000'000 / 8;  // 10 Mbit
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    h.sim.spawn([](Harness& h, std::vector<double>& d) -> Task<void> {
      co_await h.net.deliver(h.a, h.b, 10'000'000 / 8);
      d.push_back(h.sim.now().as_millis());
    }(h, done));
  }
  (void)big;
  h.sim.run_until();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 200.0, 1.0);  // 100ms tx + 100ms prop
  EXPECT_NEAR(done[1], 300.0, 1.0);  // waits 100ms behind the first
}

TEST(NetworkTest, WanAccountingCountsOnlyWanCrossings) {
  Harness h;
  (void)h.timed(h.net.deliver(h.b, h.c, 100));  // LAN only
  EXPECT_EQ(h.net.wan_messages_sent(), 0u);
  (void)h.timed(h.net.deliver(h.a, h.c, 100));  // crosses WAN link
  EXPECT_EQ(h.net.wan_messages_sent(), 1u);
  EXPECT_EQ(h.net.messages_sent(), 2u);
}

TEST(NetworkTest, CountersReset) {
  Harness h;
  (void)h.timed(h.net.deliver(h.a, h.b, 100));
  h.net.reset_counters();
  EXPECT_EQ(h.net.messages_sent(), 0u);
  EXPECT_EQ(h.net.bytes_sent(), 0);
}

// --- HTTP -------------------------------------------------------------------

TEST(HttpTest, RequestWithoutKeepAliveCostsTwoRoundTrips) {
  Harness h;
  HttpConfig cfg;
  cfg.keep_alive = false;
  HttpTransport http{h.net, cfg};
  Duration d = h.timed(http.request(h.a, h.b, 200, []() -> Task<Bytes> { co_return 2000; }));
  // Handshake RTT (200ms) + request/response RTT (200ms) + serialization.
  EXPECT_NEAR(d.as_millis(), 400.0, 1.0);
  EXPECT_EQ(http.handshakes(), 1u);
}

TEST(HttpTest, KeepAliveSkipsHandshakeAfterFirstRequest) {
  Harness h;
  HttpConfig cfg;
  cfg.keep_alive = true;
  HttpTransport http{h.net, cfg};
  auto handler = []() -> Task<Bytes> { co_return 1000; };
  Duration d1 = h.timed(http.request(h.a, h.b, 100, handler));
  Duration d2 = h.timed(http.request(h.a, h.b, 100, handler));
  EXPECT_NEAR(d1.as_millis(), 400.0, 1.0);
  EXPECT_NEAR(d2.as_millis(), 200.0, 1.0);
  EXPECT_EQ(http.handshakes(), 1u);
  EXPECT_EQ(http.requests(), 2u);
}

TEST(HttpTest, LocalRequestSkipsHandshakeDelivery) {
  Harness h;
  HttpTransport http{h.net};
  Duration d = h.timed(http.request(h.b, h.b, 100, []() -> Task<Bytes> { co_return 100; }));
  EXPECT_EQ(d, Duration::zero());
}

TEST(HttpTest, HandlerDelayIncluded) {
  Harness h;
  HttpTransport http{h.net};
  Duration d = h.timed(http.request(h.a, h.b, 100, [&]() -> Task<Bytes> {
    co_await h.sim.wait(ms(50));
    co_return 100;
  }));
  EXPECT_NEAR(d.as_millis(), 450.0, 1.0);
}

// --- RMI --------------------------------------------------------------------

RmiConfig no_jitter_rmi() {
  RmiConfig cfg;
  cfg.extra_rtt_prob = 0.0;
  cfg.dgc_traffic_factor = 1.0;
  return cfg;
}

TEST(RmiTest, LocalCallIsFreeAtTransportLayer) {
  Harness h;
  RmiTransport rmi{h.net, no_jitter_rmi()};
  Duration d = h.timed(rmi.call(h.b, h.b, 100, 100, []() -> Task<void> { co_return; }));
  EXPECT_EQ(d, Duration::zero());
  EXPECT_EQ(rmi.calls(), 1u);
  EXPECT_EQ(rmi.remote_calls(), 0u);
}

TEST(RmiTest, RemoteCallCostsOneRoundTrip) {
  Harness h;
  RmiTransport rmi{h.net, no_jitter_rmi()};
  Duration d = h.timed(rmi.call(h.a, h.b, 100, 100, []() -> Task<void> { co_return; }));
  EXPECT_NEAR(d.as_millis(), 200.0, 1.0);
  EXPECT_EQ(rmi.remote_calls(), 1u);
}

TEST(RmiTest, ExtraRoundTripsHappenAtConfiguredRate) {
  Harness h;
  RmiConfig cfg = no_jitter_rmi();
  cfg.extra_rtt_prob = 0.5;
  RmiTransport rmi{h.net, cfg};
  for (int i = 0; i < 200; ++i) {
    (void)h.timed(rmi.call(h.a, h.b, 10, 10, []() -> Task<void> { co_return; }));
  }
  double rate = static_cast<double>(rmi.extra_round_trips()) / 200.0;
  EXPECT_NEAR(rate, 0.5, 0.12);
}

TEST(RmiTest, DgcFactorInflatesBytes) {
  Harness h;
  RmiConfig cfg = no_jitter_rmi();
  RmiTransport plain{h.net, cfg};
  (void)h.timed(plain.call(h.a, h.b, 1000, 1000, []() -> Task<void> { co_return; }));
  Bytes plain_bytes = h.net.bytes_sent();

  h.net.reset_counters();
  cfg.dgc_traffic_factor = 2.0;
  RmiTransport dgc{h.net, cfg};
  (void)h.timed(dgc.call(h.a, h.b, 1000, 1000, []() -> Task<void> { co_return; }));
  EXPECT_NEAR(static_cast<double>(h.net.bytes_sent()),
              2.0 * static_cast<double>(plain_bytes), 4.0);
}

TEST(RmiTest, StubExchangeCostsOneRoundTrip) {
  Harness h;
  RmiTransport rmi{h.net, no_jitter_rmi()};
  Duration d = h.timed(rmi.stub_exchange(h.a, h.b));
  EXPECT_NEAR(d.as_millis(), 200.0, 1.0);
  EXPECT_EQ(rmi.stub_exchanges(), 1u);
  EXPECT_EQ(h.timed(rmi.stub_exchange(h.b, h.b)), Duration::zero());
}

TEST(RmiTest, ServerWorkIncludedInCallTime) {
  Harness h;
  RmiTransport rmi{h.net, no_jitter_rmi()};
  Duration d = h.timed(rmi.call(h.a, h.b, 10, 10, [&]() -> Task<void> {
    co_await h.sim.wait(ms(30));
  }));
  EXPECT_NEAR(d.as_millis(), 230.0, 1.0);
}

}  // namespace
}  // namespace mutsvc::net

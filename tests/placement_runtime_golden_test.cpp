// Golden byte-identity for the runtime-placement machinery (ISSUE 10): with
// placement *enabled* but idle — no policy installed, canary fraction 0, no
// migrations requested — every figure-7/8 ladder rung must stay bit-identical
// to the seed goldens. The versioned binding table sits on the dispatch path
// of every RMI, so this suite is what guards the refactor: an idle binding
// lookup must never perturb the event trajectory or any response summary.
//
// The constants below are the *same* rows shard_golden_test.cpp pins for the
// placement-disabled run; sharing them asserts disabled == enabled-but-idle,
// byte for byte. Runs under plain ctest, MUTSVC_SIMCHECK=1, MUTSVC_SIMRACE=1,
// and MUTSVC_PAR_DOMAINS={0,1,4} (CI matrix rows over the `migration` label).
//
// Regenerating (only legitimate after an intentional simulation change —
// and then shard_golden_test.cpp must be updated to the identical rows):
//   MUTSVC_GOLDEN_PRINT=1 ./build/tests/placement_runtime_golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "component/binding.hpp"
#include "component/migration.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"

namespace mutsvc::core {
namespace {

using stats::ClientGroup;

struct GoldenCase {
  const char* app;
  ConfigLevel level;
  std::uint64_t events;   // Simulator::executed_events() — exact
  std::uint64_t samples;  // post-warm-up page samples — exact
  std::uint64_t digest;   // FNV-1a over the pattern-mean bit patterns
};

apps::AppDriver make_driver(const char* app) {
  if (std::strcmp(app, "petstore") == 0) {
    static apps::petstore::PetStoreApp petstore;
    return petstore.driver();
  }
  static apps::rubis::RubisApp rubis;
  return rubis.driver();
}

HarnessCalibration calibration_for(const char* app) {
  return std::strcmp(app, "petstore") == 0 ? petstore_calibration() : rubis_calibration();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t digest_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a(h, bits);
}

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t samples = 0;
  std::uint64_t digest = 0;
};

Fingerprint run_case(const char* app, ConfigLevel level) {
  apps::AppDriver driver = make_driver(app);
  ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(180);
  spec.warmup = sim::sec(30);
  spec.placement.enabled = true;  // binding table live, no policy, canary 0
  Experiment exp{driver, spec, calibration_for(app)};
  exp.run();

  // Idle machinery must have stayed idle: nothing bound, nothing flipped,
  // nothing forwarded, nothing migrated.
  EXPECT_NE(exp.bindings(), nullptr);
  EXPECT_EQ(exp.bindings()->bound_components(), 0u);
  EXPECT_EQ(exp.bindings()->flips(), 0u);
  EXPECT_NE(exp.migrator(), nullptr);
  EXPECT_EQ(exp.migrator()->started(), 0u);
  EXPECT_EQ(exp.runtime().forwarded_calls(), 0u);
  EXPECT_EQ(exp.runtime().late_stragglers(), 0u);

  Fingerprint fp;
  fp.events = exp.simulator().executed_events();
  fp.samples = exp.results().total_samples();
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::string& pattern : {driver.browser_pattern, driver.writer_pattern}) {
    for (ClientGroup g : {ClientGroup::kLocal, ClientGroup::kRemote}) {
      h = digest_double(h, exp.results().pattern_mean_ms(pattern, g));
    }
  }
  h = fnv1a(h, exp.results().failures());
  h = fnv1a(h, exp.results().discarded_samples());
  fp.digest = h;
  return fp;
}

const char* level_name(ConfigLevel level) {
  switch (level) {
    case ConfigLevel::kCentralized: return "ConfigLevel::kCentralized";
    case ConfigLevel::kRemoteFacade: return "ConfigLevel::kRemoteFacade";
    case ConfigLevel::kStatefulComponentCaching: return "ConfigLevel::kStatefulComponentCaching";
    case ConfigLevel::kQueryCaching: return "ConfigLevel::kQueryCaching";
    case ConfigLevel::kAsyncUpdates: return "ConfigLevel::kAsyncUpdates";
  }
  return "?";
}

// The seed ladder goldens — identical to shard_golden_test.cpp's table by
// construction: an enabled-but-idle placement runtime is byte-equivalent to
// a disabled one.
const GoldenCase kGolden[] = {
    {"petstore", ConfigLevel::kCentralized, 181763ULL, 4422ULL, 4317317305918343935ULL},
    {"petstore", ConfigLevel::kRemoteFacade, 141198ULL, 4422ULL, 7989329386871995858ULL},
    {"petstore", ConfigLevel::kStatefulComponentCaching, 138706ULL, 4423ULL,
     1466430520844280574ULL},
    {"petstore", ConfigLevel::kQueryCaching, 120781ULL, 4423ULL, 2079169118363118974ULL},
    {"petstore", ConfigLevel::kAsyncUpdates, 120464ULL, 4423ULL, 3912069136437442181ULL},
    {"rubis", ConfigLevel::kCentralized, 112830ULL, 4466ULL, 16537404889437813069ULL},
    {"rubis", ConfigLevel::kRemoteFacade, 117483ULL, 4462ULL, 2637170168998258272ULL},
    {"rubis", ConfigLevel::kStatefulComponentCaching, 120936ULL, 4463ULL,
     2679123475190041252ULL},
    {"rubis", ConfigLevel::kQueryCaching, 114191ULL, 4459ULL, 18243552940219614127ULL},
    {"rubis", ConfigLevel::kAsyncUpdates, 113041ULL, 4460ULL, 4346410618843474633ULL},
};

class PlacementRuntimeGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(PlacementRuntimeGoldenTest, IdlePlacementRuntimeMatchesSeedGoldens) {
  const GoldenCase& g = GetParam();
  const Fingerprint fp = run_case(g.app, g.level);
  if (std::getenv("MUTSVC_GOLDEN_PRINT") != nullptr) {
    std::printf("    {\"%s\", %s, %lluULL, %lluULL, %lluULL},\n", g.app, level_name(g.level),
                static_cast<unsigned long long>(fp.events),
                static_cast<unsigned long long>(fp.samples),
                static_cast<unsigned long long>(fp.digest));
    return;
  }
  EXPECT_EQ(fp.events, g.events)
      << g.app << " " << level_name(g.level)
      << ": enabling the (idle) placement runtime perturbed the event trajectory";
  EXPECT_EQ(fp.samples, g.samples) << g.app << " " << level_name(g.level);
  EXPECT_EQ(fp.digest, g.digest)
      << g.app << " " << level_name(g.level)
      << ": enabling the (idle) placement runtime perturbed the response summaries";
}

std::string golden_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string level = level_name(info.param.level);
  return std::string(info.param.app) + "_" + level.substr(level.find("::k") + 3);
}

INSTANTIATE_TEST_SUITE_P(Ladder, PlacementRuntimeGoldenTest, ::testing::ValuesIn(kGolden),
                         golden_name);

}  // namespace
}  // namespace mutsvc::core

#include <gtest/gtest.h>

#include "core/placement/advisor.hpp"
#include "core/placement/algorithms.hpp"
#include "core/placement/graph.hpp"
#include "core/placement/model.hpp"

namespace mutsvc::core::placement {
namespace {

/// client_remote -> web -> facade -> entity -> database, plus a query
/// class — the canonical shape of both paper applications.
PlacementProblem chain_problem(double entity_write_rate = 0.0) {
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
  p.graph.add_vertex(Vertex{"Web", VertexKind::kWebComponent});
  p.graph.add_vertex(Vertex{"Facade", VertexKind::kStatelessService});
  p.graph.add_vertex(Vertex{"Item", VertexKind::kSharedEntity, entity_write_rate});
  p.graph.add_vertex(Vertex{"query:item", VertexKind::kQueryResults});
  p.graph.add_edge("__client_remote__", "Web", 20.0, 2.0);
  p.graph.add_edge("__client_local__", "Web", 10.0, 2.0);
  p.graph.add_edge("Web", "Facade", 30.0, 1.5);
  p.graph.add_edge("Facade", "Item", 25.0, 1.5);
  p.graph.add_edge("Facade", "query:item", 5.0, 1.5);
  p.graph.add_edge("Item", "__database__", 25.0, 1.0);
  return p;
}

// --- graph ---------------------------------------------------------------------

TEST(InteractionGraphTest, VertexIndexAndDuplicates) {
  InteractionGraph g;
  g.add_vertex(Vertex{"A", VertexKind::kWebComponent});
  EXPECT_EQ(g.index_of("A"), 0u);
  EXPECT_TRUE(g.has_vertex("A"));
  EXPECT_FALSE(g.has_vertex("B"));
  EXPECT_THROW(g.add_vertex(Vertex{"A", VertexKind::kWebComponent}), std::invalid_argument);
  EXPECT_THROW((void)g.index_of("B"), std::invalid_argument);
}

TEST(InteractionGraphTest, EdgeAccumulation) {
  InteractionGraph g;
  g.add_vertex(Vertex{"A", VertexKind::kWebComponent});
  g.add_vertex(Vertex{"B", VertexKind::kStatelessService});
  g.add_edge("A", "B", 10.0, 2.0, 100.0);
  g.add_edge("A", "B", 10.0, 1.0, 300.0);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].rate, 20.0);
  EXPECT_DOUBLE_EQ(g.edges()[0].round_trips, 1.5);  // rate-weighted mean
  EXPECT_DOUBLE_EQ(g.edges()[0].bytes, 200.0);
}

TEST(InteractionGraphTest, FreeVertexCountExcludesPinned) {
  PlacementProblem p = chain_problem();
  EXPECT_EQ(p.graph.vertex_count(), 7u);
  EXPECT_EQ(p.graph.free_vertex_count(), 4u);
}

TEST(InteractionGraphTest, DescribeListsVerticesAndEdges) {
  PlacementProblem p = chain_problem();
  std::string desc = p.graph.describe();
  EXPECT_NE(desc.find("Facade"), std::string::npos);
  EXPECT_NE(desc.find("->"), std::string::npos);
}

TEST(BuildGraphTest, ProfileSplitsClientTrafficAndKinds) {
  comp::Application app{"t"};
  app.define("Web", comp::ComponentKind::kServlet);
  app.define("Facade", comp::ComponentKind::kStatelessSessionBean);
  app.define("Cart", comp::ComponentKind::kStatefulSessionBean);

  comp::Runtime::InteractionProfile profile;
  profile[{"__client__", "Web"}] = {.calls = 3600, .writes = 0, .bytes = 360000};
  profile[{"Web", "Facade"}] = {.calls = 3600, .writes = 0, .bytes = 360000};
  profile[{"Web", "Cart"}] = {.calls = 1800, .writes = 0, .bytes = 180000};
  profile[{"Facade", "Item"}] = {.calls = 3600, .writes = 360, .bytes = 360000};
  profile[{"Facade", "query:item"}] = {.calls = 900, .writes = 0, .bytes = 90000};

  GraphBuildOptions opts;
  opts.window = sim::sec(3600);
  InteractionGraph g = build_graph(profile, app, opts);

  EXPECT_EQ(g.vertex(g.index_of("Web")).kind, VertexKind::kWebComponent);
  EXPECT_EQ(g.vertex(g.index_of("Cart")).kind, VertexKind::kSessionState);
  EXPECT_EQ(g.vertex(g.index_of("Item")).kind, VertexKind::kSharedEntity);
  EXPECT_EQ(g.vertex(g.index_of("query:item")).kind, VertexKind::kQueryResults);
  EXPECT_NEAR(g.vertex(g.index_of("Item")).write_rate, 0.1, 1e-9);

  // Client traffic split 2/3 remote, 1/3 local at 1 call/s total.
  double remote_rate = 0.0;
  double local_rate = 0.0;
  for (const auto& e : g.edges()) {
    if (e.from == g.index_of("__client_remote__")) remote_rate += e.rate;
    if (e.from == g.index_of("__client_local__")) local_rate += e.rate;
  }
  EXPECT_NEAR(remote_rate, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(local_rate, 1.0 / 3.0, 1e-9);
}

TEST(BuildGraphTest, ShardedBuildSplitsDatabaseTrafficAcrossPinnedVertices) {
  comp::Application app{"t"};
  app.define("Facade", comp::ComponentKind::kStatelessSessionBean);
  comp::Runtime::InteractionProfile profile;
  profile[{"Facade", "__database__"}] = {.calls = 3600, .writes = 720, .bytes = 1440000};

  GraphBuildOptions opts;
  opts.window = sim::sec(3600);
  opts.db_shards = 3;
  InteractionGraph g = build_graph(profile, app, opts);

  // One pinned vertex per shard; the multi-main edges conserve the total
  // 1 call/s (0.2 writes/s) of DB traffic, split uniformly.
  double rate = 0.0;
  double write_rate = 0.0;
  for (std::size_t s = 0; s < 3; ++s) {
    const std::size_t v = g.index_of(database_vertex_name(s));
    EXPECT_EQ(g.vertex(v).kind, VertexKind::kDatabase);
    for (const auto& e : g.edges()) {
      if (e.to != v) continue;
      EXPECT_NEAR(e.rate, 1.0 / 3.0, 1e-9);
      rate += e.rate;
      write_rate += e.write_rate;
    }
  }
  EXPECT_NEAR(rate, 1.0, 1e-9);
  EXPECT_NEAR(write_rate, 0.2, 1e-9);
  EXPECT_THROW((void)g.index_of("__database_s3__"), std::invalid_argument);
  EXPECT_THROW((void)build_graph(profile, app, GraphBuildOptions{.db_shards = 0}),
               std::invalid_argument);
}

TEST(BuildGraphTest, SingleShardBuildKeepsTheLegacyDatabaseVertex) {
  comp::Application app{"t"};
  app.define("Facade", comp::ComponentKind::kStatelessSessionBean);
  comp::Runtime::InteractionProfile profile;
  profile[{"Facade", "__database__"}] = {.calls = 3600, .writes = 0, .bytes = 1440000};
  InteractionGraph g = build_graph(profile, app, GraphBuildOptions{});
  EXPECT_TRUE(g.has_vertex("__database__"));
  EXPECT_FALSE(g.has_vertex("__database_s1__"));
  EXPECT_EQ(database_vertex_name(0), "__database__");
}

// --- cost model -------------------------------------------------------------------

TEST(CostModelTest, CentralizedCostCountsRemoteHttp) {
  PlacementProblem p = chain_problem();
  CostModel model{p};
  // Only the remote-client edge crosses: 20/s x 2 RTT x 200ms = 8000 ms/s.
  EXPECT_NEAR(model.centralized_cost(), 8000.0, 1e-6);
}

TEST(CostModelTest, ReplicatingWholeChainRemovesWanCost) {
  PlacementProblem p = chain_problem();
  CostModel model{p};
  Assignment a(p.graph.vertex_count(), false);
  a[p.graph.index_of("Web")] = true;
  a[p.graph.index_of("Facade")] = true;
  a[p.graph.index_of("Item")] = true;
  a[p.graph.index_of("query:item")] = true;
  // Remaining cost: replica overhead only (4 replicated vertices x 2 edges
  // x 0.05) — the Item->DB edge no longer matters because reads are served
  // by the replica... but the model keeps DB traffic from main-located
  // execution free anyway.
  EXPECT_LT(model.cost(a), 1.0);
}

TEST(CostModelTest, PartialChainStillCrosses) {
  PlacementProblem p = chain_problem();
  CostModel model{p};
  Assignment a(p.graph.vertex_count(), false);
  a[p.graph.index_of("Web")] = true;
  // Web at edges but Facade central: Web->Facade crossing for 2/3 of 30/s.
  const double expected = 30.0 * (2.0 / 3.0) * 1.5 * 200.0 + 2 * 0.05;
  EXPECT_NEAR(model.cost(a), expected, 1e-6);
}

TEST(CostModelTest, WritesAlwaysCrossFromEdges) {
  // Writer at the edge, write-only entity: replicating the entity must not
  // remove the WAN cost, because replicas are read-only.
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"Writer", VertexKind::kStatelessService});
  p.graph.add_vertex(Vertex{"Order", VertexKind::kSharedEntity, /*write_rate=*/4.0});
  p.graph.add_edge("__client_remote__", "Writer", 4.0, 2.0);
  p.graph.add_edge("Writer", "Order", 4.0, 1.5, 512.0, /*write_rate=*/4.0);
  CostModel model{p};

  Assignment writer_only(p.graph.vertex_count(), false);
  writer_only[p.graph.index_of("Writer")] = true;
  Assignment both = writer_only;
  both[p.graph.index_of("Order")] = true;

  // With the writer at the edge, the 4/s writes cross regardless of the
  // entity's replication — replicating Order only adds update/overhead
  // cost, so the model must score it strictly worse.
  EXPECT_GT(model.cost(both), model.cost(writer_only));
}

TEST(CostModelTest, UpdateModeFlipsTheReplicationDecision) {
  // Entity with 5 writes/s and 6 reads/s via the chain: read benefit
  // (6 x 2/3 x 1.5 x 200 = 1200 ms/s) is below the blocking-push cost
  // (5 x 2 x 200 = 2000 ms/s) but far above the async cost (5 x 5 = 25).
  auto make = [](bool async) {
    PlacementProblem p;
    p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
    p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
    p.graph.add_vertex(Vertex{"Web", VertexKind::kWebComponent});
    p.graph.add_vertex(Vertex{"Item", VertexKind::kSharedEntity, /*write_rate=*/5.0});
    p.graph.add_edge("__client_remote__", "Web", 9.0, 2.0);
    p.graph.add_edge("Web", "Item", 11.0, 1.5, 512.0, /*write_rate=*/5.0);
    p.async_updates = async;
    return p;
  };

  PlacementProblem blocking = make(false);
  PlacementProblem async = make(true);
  SolveResult blocking_best = solve_exhaustive(blocking);
  SolveResult async_best = solve_exhaustive(async);
  EXPECT_FALSE(blocking_best.assignment[blocking.graph.index_of("Item")]);
  EXPECT_TRUE(async_best.assignment[async.graph.index_of("Item")]);
}

TEST(CostModelTest, AsyncMakesReplicationOfWriteHotStateCheap) {
  PlacementProblem p = chain_problem(/*entity_write_rate=*/5.0);
  CostModel async_model{p};
  PlacementProblem blocking = chain_problem(5.0);
  blocking.async_updates = false;
  CostModel blocking_model{blocking};
  Assignment a(p.graph.vertex_count(), true);
  EXPECT_LT(async_model.cost(a), blocking_model.cost(a));
}

/// chain_problem with its DB edge split across `shards` pinned vertices
/// and the data-tier service term enabled.
PlacementProblem sharded_problem(int shards, double service_ms = 2.0) {
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  for (int s = 0; s < shards; ++s) {
    p.graph.add_vertex(Vertex{database_vertex_name(static_cast<std::size_t>(s)),
                              VertexKind::kDatabase});
  }
  p.graph.add_vertex(Vertex{"Web", VertexKind::kWebComponent});
  p.graph.add_vertex(Vertex{"Item", VertexKind::kSharedEntity});
  p.graph.add_edge("__client_remote__", "Web", 20.0, 2.0);
  p.graph.add_edge("Web", "Item", 25.0, 1.5);
  for (int s = 0; s < shards; ++s) {
    p.graph.add_edge("Item", database_vertex_name(static_cast<std::size_t>(s)),
                     25.0 / shards, 1.0);
  }
  p.db_shards = shards;
  p.db_service_ms = service_ms;
  return p;
}

TEST(CostModelTest, DataTierTermIsOffByDefault) {
  // db_service_ms defaults to 0: a sharded graph costs exactly what its
  // WAN terms say, and the paper's single-shard problems are untouched.
  PlacementProblem p = sharded_problem(4, /*service_ms=*/0.0);
  EXPECT_DOUBLE_EQ(CostModel{p}.data_tier_cost(), 0.0);
  PlacementProblem legacy = chain_problem();
  EXPECT_NEAR(CostModel{legacy}.centralized_cost(), 8000.0, 1e-6);
}

TEST(CostModelTest, ShardingTradesServiceTimeAgainstFanout) {
  // 25 stmts/s at 2ms: the per-statement service share falls as 1/S while
  // the scatter-gather overhead grows as (S-1) — costs drop through the
  // sweet spot, and an absurdly wide fleet costs more than a modest one.
  const double c1 = CostModel{sharded_problem(1)}.data_tier_cost();
  const double c2 = CostModel{sharded_problem(2)}.data_tier_cost();
  const double c4 = CostModel{sharded_problem(4)}.data_tier_cost();
  EXPECT_NEAR(c1, 25.0 * 2.0, 1e-9);  // no overhead at one shard
  EXPECT_LT(c2, c1);
  EXPECT_LT(c4, c2);
  const double c64 = CostModel{sharded_problem(64)}.data_tier_cost();
  EXPECT_GT(c64, c4);  // overhead eventually dominates
}

TEST(CostModelTest, MultiMainEdgesPreserveWanCrossingTotals) {
  // Splitting the DB edge across shard vertices must not change the WAN
  // part of the cost: every shard vertex is pinned at the main site, so an
  // edge-replicated caller pays the same total crossing rate.
  PlacementProblem one = sharded_problem(1, 0.0);
  PlacementProblem four = sharded_problem(4, 0.0);
  CostModel m1{one};
  CostModel m4{four};
  Assignment a1(one.graph.vertex_count(), true);
  Assignment a4(four.graph.vertex_count(), true);
  EXPECT_NEAR(m1.cost(a1), m4.cost(a4), 1e-9);
  EXPECT_NEAR(m1.centralized_cost(), m4.centralized_cost(), 1e-9);
}

// --- algorithms --------------------------------------------------------------------

TEST(AlgorithmsTest, ExhaustiveFindsFullReplicationForReadOnlyChain) {
  PlacementProblem p = chain_problem();
  SolveResult r = solve_exhaustive(p);
  EXPECT_TRUE(r.assignment[p.graph.index_of("Web")]);
  EXPECT_TRUE(r.assignment[p.graph.index_of("Facade")]);
  EXPECT_TRUE(r.assignment[p.graph.index_of("Item")]);
  EXPECT_LT(r.cost, CostModel{p}.centralized_cost());
}

TEST(AlgorithmsTest, ExhaustiveThrowsOnHugeSearchSpace) {
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  for (int i = 0; i < 30; ++i) {
    p.graph.add_vertex(Vertex{"c" + std::to_string(i), VertexKind::kStatelessService});
  }
  EXPECT_THROW((void)solve_exhaustive(p), std::invalid_argument);
}

TEST(AlgorithmsTest, LocalSearchAndAnnealingMatchExhaustiveOnChain) {
  PlacementProblem p = chain_problem();
  SolveResult exact = solve_exhaustive(p);
  SolveResult ls = solve_local_search(p, sim::RngStream{3});
  SolveResult sa = solve_annealing(p, sim::RngStream{3});
  EXPECT_NEAR(ls.cost, exact.cost, 1e-9);
  EXPECT_NEAR(sa.cost, exact.cost, 1e-9);
}

TEST(AlgorithmsTest, BranchAndBoundMatchesExhaustiveWithFewerEvaluations) {
  // 16 free vertices: exhaustive pays 2^16 evaluations; pruning should cut
  // that by orders of magnitude while staying exact.
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
  sim::RngStream rng{13};
  for (int i = 0; i < 16; ++i) {
    VertexKind kind = i % 3 == 0   ? VertexKind::kWebComponent
                      : i % 3 == 1 ? VertexKind::kStatelessService
                                   : VertexKind::kSharedEntity;
    Vertex v{"c" + std::to_string(i), kind};
    if (kind == VertexKind::kSharedEntity) v.write_rate = rng.uniform(0.0, 2.0);
    p.graph.add_vertex(std::move(v));
    std::string from = i % 4 == 0 ? "__client_remote__" : "c" + std::to_string(i - 1);
    p.graph.add_edge(from, "c" + std::to_string(i), rng.uniform(1.0, 10.0),
                     i % 4 == 0 ? 2.0 : 1.5);
  }
  SolveResult exact = solve_exhaustive(p);
  SolveResult bb = solve_branch_and_bound(p);
  EXPECT_NEAR(bb.cost, exact.cost, 1e-9);
  EXPECT_LT(bb.evaluations, exact.evaluations / 4);
}

TEST(AlgorithmsTest, BranchAndBoundScalesPastExhaustiveLimit) {
  // 30 free vertices: exhaustive would need 2^30 evaluations and throws;
  // branch-and-bound solves it exactly.
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
  sim::RngStream rng{77};
  for (int c = 0; c < 10; ++c) {  // ten independent 3-component chains
    std::string web = "web" + std::to_string(c);
    std::string svc = "svc" + std::to_string(c);
    std::string ent = "ent" + std::to_string(c);
    p.graph.add_vertex(Vertex{web, VertexKind::kWebComponent});
    p.graph.add_vertex(Vertex{svc, VertexKind::kStatelessService});
    p.graph.add_vertex(Vertex{ent, VertexKind::kSharedEntity, rng.uniform(0.0, 1.0)});
    p.graph.add_edge("__client_remote__", web, rng.uniform(1.0, 5.0), 2.0);
    p.graph.add_edge(web, svc, rng.uniform(1.0, 5.0), 1.5);
    p.graph.add_edge(svc, ent, rng.uniform(1.0, 5.0), 1.5);
    p.graph.add_edge(ent, "__database__", 1.0, 1.0);
  }
  EXPECT_THROW((void)solve_exhaustive(p), std::invalid_argument);
  SolveResult bb = solve_branch_and_bound(p);
  SolveResult sa = solve_annealing(p, sim::RngStream{5});
  EXPECT_LE(bb.cost, sa.cost + 1e-9);  // exact is never beaten
  EXPECT_LT(bb.cost, CostModel{p}.centralized_cost() / 5.0);
  // Independent chains make the optimum separable: annealing should tie.
  EXPECT_NEAR(bb.cost, sa.cost, sa.cost * 0.05 + 1e-6);
}

TEST(AlgorithmsTest, GreedyNeverWorseThanCentralized) {
  PlacementProblem p = chain_problem();
  SolveResult g = solve_greedy(p);
  EXPECT_LE(g.cost, CostModel{p}.centralized_cost() + 1e-9);
}

TEST(AlgorithmsTest, DeterministicForSameSeed) {
  PlacementProblem p = chain_problem(1.0);
  SolveResult a = solve_annealing(p, sim::RngStream{11});
  SolveResult b = solve_annealing(p, sim::RngStream{11});
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.assignment, b.assignment);
}

/// Property sweep over random layered graphs: heuristics never beat the
/// exact optimum, never lose to centralized, and annealing matches the
/// optimum on these small instances.
class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, HeuristicBounds) {
  sim::RngStream rng{GetParam()};
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
  const int n = 3 + static_cast<int>(rng.uniform_int(2, 9));  // 5..12 free
  for (int i = 0; i < n; ++i) {
    VertexKind kind = i % 3 == 0   ? VertexKind::kWebComponent
                      : i % 3 == 1 ? VertexKind::kStatelessService
                                   : VertexKind::kSharedEntity;
    Vertex v{"c" + std::to_string(i), kind};
    if (kind == VertexKind::kSharedEntity) v.write_rate = rng.uniform(0.0, 3.0);
    p.graph.add_vertex(std::move(v));
    std::string from = i == 0 ? "__client_remote__" : "c" + std::to_string(i - 1);
    p.graph.add_edge(from, "c" + std::to_string(i), rng.uniform(1.0, 20.0),
                     i == 0 ? 2.0 : 1.5);
    if (kind == VertexKind::kSharedEntity) {
      p.graph.add_edge("c" + std::to_string(i), "__database__", rng.uniform(0.5, 5.0), 1.0);
    }
  }
  p.async_updates = rng.bernoulli(0.5);

  const CostModel model{p};
  const double centralized = model.centralized_cost();
  SolveResult exact = solve_exhaustive(p);
  SolveResult bb = solve_branch_and_bound(p);
  SolveResult greedy = solve_greedy(p);
  SolveResult ls = solve_local_search(p, rng.fork("ls"));
  SolveResult sa = solve_annealing(p, rng.fork("sa"));

  EXPECT_NEAR(bb.cost, exact.cost, 1e-9);  // branch-and-bound is exact
  EXPECT_LE(exact.cost, greedy.cost + 1e-9);
  EXPECT_LE(exact.cost, ls.cost + 1e-9);
  EXPECT_LE(exact.cost, sa.cost + 1e-9);
  EXPECT_LE(greedy.cost, centralized + 1e-9);
  EXPECT_LE(ls.cost, centralized + 1e-9);
  EXPECT_LE(sa.cost, centralized + 1e-9);
  // Annealing with polish should be near-exact on these sizes.
  EXPECT_LE(sa.cost, exact.cost * 1.05 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// --- advisor -----------------------------------------------------------------------

TEST(AdvisorTest, ClassifiesAdviceByKind) {
  PlacementProblem p = chain_problem();
  Advice advice = advise(p, Algorithm::kExhaustive);
  EXPECT_EQ(advice.replicate_components.size(), 2u);  // Web + Facade
  ASSERT_EQ(advice.read_only_entities.size(), 1u);
  EXPECT_EQ(advice.read_only_entities[0], "Item");
  ASSERT_EQ(advice.cached_query_classes.size(), 1u);
  EXPECT_EQ(advice.cached_query_classes[0], "query:item");
  EXPECT_GT(advice.improvement_factor(), 10.0);
}

TEST(AdvisorTest, DescribeMentionsEverything) {
  PlacementProblem p = chain_problem();
  Advice advice = advise(p, Algorithm::kGreedy);
  std::string desc = advice.describe(p.graph);
  EXPECT_NE(desc.find("greedy"), std::string::npos);
  EXPECT_NE(desc.find("replicate to edges"), std::string::npos);
}

}  // namespace
}  // namespace mutsvc::core::placement

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "db/jdbc.hpp"
#include "db/query.hpp"
#include "db/table.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::db {
namespace {

using sim::Duration;
using sim::ms;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

std::vector<Column> item_columns() {
  return {{"id", ColumnType::kInt},
          {"product_id", ColumnType::kInt},
          {"name", ColumnType::kText},
          {"price", ColumnType::kReal}};
}

Row item_row(std::int64_t id, std::int64_t product, std::string name, double price) {
  return Row{id, product, std::move(name), price};
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, InsertGetUpdateErase) {
  Table t{"item", item_columns()};
  t.insert(item_row(1, 10, "fish", 9.99));
  ASSERT_TRUE(t.contains(1));
  auto row = t.get(1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(as_text((*row)[2]), "fish");

  t.update_column(1, "price", 12.5);
  EXPECT_DOUBLE_EQ(as_real((*t.get(1))[3]), 12.5);

  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.get(1).has_value());
}

TEST(TableTest, SchemaValidation) {
  Table t{"item", item_columns()};
  EXPECT_THROW(t.insert(Row{std::int64_t{1}, std::int64_t{2}}), std::invalid_argument);
  EXPECT_THROW(t.insert(Row{std::string{"x"}, std::int64_t{2}, std::string{"y"}, 1.0}),
               std::invalid_argument);
  t.insert(item_row(1, 10, "fish", 9.99));
  EXPECT_THROW(t.insert(item_row(1, 11, "dup", 1.0)), std::invalid_argument);
  EXPECT_THROW(t.update_column(1, "id", std::int64_t{5}), std::invalid_argument);
  EXPECT_THROW(t.update_column(99, "price", 1.0), std::out_of_range);
  EXPECT_THROW((void)t.column_index("nope"), std::invalid_argument);
}

TEST(TableTest, PrimaryKeyMustBeInt) {
  EXPECT_THROW(Table("bad", {{"pk", ColumnType::kText}}), std::invalid_argument);
  EXPECT_THROW(Table("bad", {}), std::invalid_argument);
}

TEST(TableTest, FindEqualWithAndWithoutIndex) {
  Table t{"item", item_columns()};
  for (std::int64_t i = 0; i < 30; ++i) t.insert(item_row(i, i % 3, "it", 1.0));

  auto scan_result = t.find_equal("product_id", std::int64_t{1});
  EXPECT_EQ(scan_result.size(), 10u);

  t.create_index("product_id");
  ASSERT_TRUE(t.has_index("product_id"));
  auto idx_result = t.find_equal("product_id", std::int64_t{1});
  EXPECT_EQ(idx_result.size(), 10u);
}

TEST(TableTest, IndexMaintainedAcrossMutations) {
  Table t{"item", item_columns()};
  t.create_index("product_id");
  t.insert(item_row(1, 7, "a", 1.0));
  t.insert(item_row(2, 7, "b", 1.0));
  EXPECT_EQ(t.find_equal("product_id", std::int64_t{7}).size(), 2u);

  t.update_column(1, "product_id", std::int64_t{8});
  EXPECT_EQ(t.find_equal("product_id", std::int64_t{7}).size(), 1u);
  EXPECT_EQ(t.find_equal("product_id", std::int64_t{8}).size(), 1u);

  t.erase(2);
  EXPECT_TRUE(t.find_equal("product_id", std::int64_t{7}).empty());
}

TEST(TableTest, ForEachEqualMatchesFindEqualWithAndWithoutIndex) {
  Table t{"item", item_columns()};
  for (std::int64_t i = 0; i < 30; ++i) t.insert(item_row(i, i % 3, "it", 1.0));

  auto visit = [&](const Value& key) {
    std::vector<Row> seen;
    t.for_each_equal("product_id", key, [&](const Row& r) { seen.push_back(r); });
    return seen;
  };
  // Same rows, same (pk-ascending) order, on both the scan and index paths.
  EXPECT_EQ(visit(std::int64_t{1}), t.find_equal("product_id", std::int64_t{1}));
  t.create_index("product_id");
  EXPECT_EQ(visit(std::int64_t{1}), t.find_equal("product_id", std::int64_t{1}));
  EXPECT_TRUE(visit(std::int64_t{99}).empty());
}

TEST(TableTest, ForEachEqualVisitsRowsInPlace) {
  Table t{"item", item_columns()};
  t.create_index("product_id");
  t.insert(item_row(1, 7, "a", 1.0));
  t.insert(item_row(2, 7, "b", 1.0));
  // The visited references are the stored rows themselves — the addresses
  // are stable across visits, proving no per-visit copies are made.
  std::vector<const Row*> first, second;
  t.for_each_equal("product_id", std::int64_t{7}, [&](const Row& r) { first.push_back(&r); });
  t.for_each_equal("product_id", std::int64_t{7}, [&](const Row& r) { second.push_back(&r); });
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(as_text((*first[0])[2]), "a");
  EXPECT_EQ(as_text((*first[1])[2]), "b");
}

TEST(TableTest, TextColumnIndexLookups) {
  Table t{"item", item_columns()};
  t.create_index("name");
  t.insert(item_row(1, 10, "fish", 1.0));
  t.insert(item_row(2, 11, "fish", 2.0));
  t.insert(item_row(3, 12, "cat", 3.0));
  EXPECT_EQ(t.find_equal("name", std::string("fish")).size(), 2u);
  EXPECT_EQ(t.find_equal("name", std::string("cat")).size(), 1u);
  EXPECT_TRUE(t.find_equal("name", std::string("dog")).empty());
  std::size_t visited = 0;
  t.for_each_equal("name", std::string("fish"), [&](const Row&) { ++visited; });
  EXPECT_EQ(visited, 2u);
}

TEST(TableTest, IndexSurvivesRowStorageGrowth) {
  // Index entries point at rows held by node-based storage; inserting many
  // rows after indexing must not invalidate earlier entries.
  Table t{"item", item_columns()};
  t.create_index("product_id");
  t.insert(item_row(0, 42, "first", 1.0));
  for (std::int64_t i = 1; i < 500; ++i) t.insert(item_row(i, i % 5, "fill", 1.0));
  auto rows = t.find_equal("product_id", std::int64_t{42});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(as_text(rows[0][2]), "first");
}

TEST(TableTest, ScanPredicate) {
  Table t{"item", item_columns()};
  for (std::int64_t i = 0; i < 10; ++i) t.insert(item_row(i, 0, "it", static_cast<double>(i)));
  auto rows = t.scan([](const Row& r) { return as_real(r[3]) >= 7.0; });
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TableTest, ApproxRowBytesPositive) {
  Table t{"item", item_columns()};
  EXPECT_GT(t.approx_row_bytes(), 0);
  t.insert(item_row(1, 2, "some item name", 3.0));
  EXPECT_GT(t.approx_row_bytes(), 20);
}

// --- Database ----------------------------------------------------------------

struct DbHarness {
  Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId app, dbnode;
  net::Network net{sim, topo, Duration::zero()};
  Database db;

  DbHarness() : db{topo, make_nodes(), DbCostModel{}} {
    auto& t = db.create_table("item", item_columns());
    for (std::int64_t i = 0; i < 50; ++i) t.insert(item_row(i, i % 5, "item", 2.0));
    t.create_index("product_id");
  }

  net::NodeId make_nodes() {
    app = topo.add_node("app", net::NodeRole::kAppServer);
    dbnode = topo.add_node("db", net::NodeRole::kDatabaseServer);
    topo.add_link(app, dbnode, ms(0.2), 100e6);
    return dbnode;
  }

  Duration timed(Task<void> t) {
    SimTime start = sim.now();
    sim.spawn(std::move(t));
    sim.run_until();
    return sim.now() - start;
  }
};

TEST(DatabaseTest, PkLookupHitAndMiss) {
  DbHarness h;
  auto hit = h.db.execute_immediate(Query::pk_lookup("item", 7));
  ASSERT_EQ(hit.rows.size(), 1u);
  EXPECT_EQ(as_int(hit.rows[0][0]), 7);
  auto miss = h.db.execute_immediate(Query::pk_lookup("item", 999));
  EXPECT_TRUE(miss.rows.empty());
}

TEST(DatabaseTest, FinderReturnsMatches) {
  DbHarness h;
  auto res = h.db.execute_immediate(Query::finder("item", "product_id", std::int64_t{2}));
  EXPECT_EQ(res.rows.size(), 10u);
}

TEST(DatabaseTest, AggregateDispatch) {
  DbHarness h;
  h.db.register_aggregate("count_items", [](Database& db, const std::vector<Value>&) {
    return std::vector<Row>{Row{static_cast<std::int64_t>(db.table("item").row_count())}};
  });
  auto res = h.db.execute_immediate(Query::aggregate("count_items"));
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(as_int(res.rows[0][0]), 50);
  EXPECT_THROW(h.db.execute_immediate(Query::aggregate("nope")), std::invalid_argument);
}

TEST(DatabaseTest, KeywordSearch) {
  DbHarness h;
  h.db.table("item").insert(item_row(100, 0, "angelfish deluxe", 5.0));
  auto res = h.db.execute_immediate(Query::keyword_search("item", "name", "angel"));
  EXPECT_EQ(res.rows.size(), 1u);
}

TEST(DatabaseTest, WritesMutateAndCount) {
  DbHarness h;
  EXPECT_EQ(h.db.writes_executed(), 0u);
  h.db.execute_immediate(Query::update("item", 3, "price", 9.0));
  h.db.execute_immediate(Query::insert("item", item_row(200, 1, "new", 1.0)));
  h.db.execute_immediate(Query::del("item", 4));
  EXPECT_EQ(h.db.writes_executed(), 3u);
  EXPECT_DOUBLE_EQ(as_real((*h.db.table("item").get(3))[3]), 9.0);
  EXPECT_TRUE(h.db.table("item").contains(200));
  EXPECT_FALSE(h.db.table("item").contains(4));
}

TEST(DatabaseTest, ExecuteConsumesServiceTime) {
  DbHarness h;
  Duration d = h.timed([](DbHarness& h) -> Task<void> {
    (void)co_await h.db.execute(Query::pk_lookup("item", 1));
  }(h));
  EXPECT_EQ(d, h.db.cost_model().pk_lookup);
}

TEST(DatabaseTest, CostScalesWithRows) {
  DbHarness h;
  Query q = Query::finder("item", "product_id", std::int64_t{0});
  EXPECT_GT(h.db.cost_of(q, 100), h.db.cost_of(q, 1));
}

TEST(DatabaseTest, QueryCacheKeyDistinguishesQueries) {
  auto a = Query::finder("item", "product_id", std::int64_t{1}).cache_key();
  auto b = Query::finder("item", "product_id", std::int64_t{2}).cache_key();
  auto c = Query::aggregate("products_in_category", {std::int64_t{1}}).cache_key();
  auto c2 = Query::aggregate("products_in_category", {std::int64_t{1}}).cache_key();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(c, c2);
}

// --- JDBC --------------------------------------------------------------------

TEST(JdbcTest, FirstStatementOpensConnectionThenPools) {
  DbHarness h;
  JdbcClient jdbc{h.net, h.db, h.app};
  (void)h.timed([](JdbcClient& j) -> Task<void> {
    (void)co_await j.execute(Query::pk_lookup("item", 1));
    (void)co_await j.execute(Query::pk_lookup("item", 2));
  }(jdbc));
  EXPECT_EQ(jdbc.statements(), 2u);
  EXPECT_EQ(jdbc.connections_opened(), 1u);
}

TEST(JdbcTest, NoPoolingOpensEveryTime) {
  DbHarness h;
  JdbcConfig cfg;
  cfg.pool_connections = false;
  JdbcClient jdbc{h.net, h.db, h.app, cfg};
  (void)h.timed([](JdbcClient& j) -> Task<void> {
    (void)co_await j.execute(Query::pk_lookup("item", 1));
    (void)co_await j.execute(Query::pk_lookup("item", 2));
  }(jdbc));
  EXPECT_EQ(jdbc.connections_opened(), 2u);
}

TEST(JdbcTest, LargeResultsCostExtraFetchRoundTrips) {
  DbHarness h;
  JdbcConfig cfg;
  cfg.fetch_size = 3;
  JdbcClient jdbc{h.net, h.db, h.app, cfg};
  (void)h.timed([](JdbcClient& j) -> Task<void> {
    // 10 rows at fetch_size 3 -> 4 batches -> 3 extra round trips.
    (void)co_await j.execute(Query::finder("item", "product_id", std::int64_t{0}));
  }(jdbc));
  EXPECT_EQ(jdbc.fetch_round_trips(), 3u);
}

TEST(JdbcTest, WanJdbcIsMuchSlowerThanLan) {
  // The §4.2 motivation: direct JDBC from an edge web tier across the WAN.
  Simulator sim{1};
  net::Topology topo{sim};
  auto edge = topo.add_node("edge", net::NodeRole::kAppServer);
  auto dbn = topo.add_node("db", net::NodeRole::kDatabaseServer);
  topo.add_link(edge, dbn, ms(100), 100e6);
  net::Network net{sim, topo, Duration::zero()};
  Database db{topo, dbn};
  auto& t = db.create_table("item", item_columns());
  for (std::int64_t i = 0; i < 20; ++i) t.insert(item_row(i, 0, "x", 1.0));

  JdbcConfig cfg;
  cfg.fetch_size = 2;  // BMP-ish verbose traversal
  JdbcClient jdbc{net, db, edge, cfg};
  SimTime start = sim.now();
  sim.spawn([](JdbcClient& j) -> Task<void> {
    (void)co_await j.execute(Query::finder("item", "product_id", std::int64_t{0}));
  }(jdbc));
  sim.run_until();
  // connect RTT + query RTT + 9 fetch RTTs = 11 round trips = 2200 ms.
  EXPECT_GT((sim.now() - start).as_millis(), 2000.0);
}

}  // namespace
}  // namespace mutsvc::db

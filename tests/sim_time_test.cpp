#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace mutsvc::sim {
namespace {

TEST(DurationTest, FactoriesAndAccessors) {
  EXPECT_EQ(us(250).count_micros(), 250);
  EXPECT_EQ(ms(3).count_micros(), 3000);
  EXPECT_EQ(sec(2).count_micros(), 2'000'000);
  EXPECT_DOUBLE_EQ(ms(1.5).as_millis(), 1.5);
  EXPECT_DOUBLE_EQ(sec(0.25).as_seconds(), 0.25);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ(ms(2) + ms(3), ms(5));
  EXPECT_EQ(ms(5) - ms(3), ms(2));
  EXPECT_EQ(ms(2) * 2.5, ms(5));
  EXPECT_EQ(2.5 * ms(2), ms(5));
  EXPECT_DOUBLE_EQ(ms(10) / ms(4), 2.5);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = ms(1);
  d += ms(2);
  EXPECT_EQ(d, ms(3));
  d -= ms(1);
  EXPECT_EQ(d, ms(2));
}

TEST(DurationTest, Ordering) {
  EXPECT_LT(ms(1), ms(2));
  EXPECT_GT(sec(1), ms(999));
  EXPECT_EQ(Duration::zero(), us(0));
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(SimTimeTest, OriginAndAdvance) {
  SimTime t = SimTime::origin();
  EXPECT_EQ(t.count_micros(), 0);
  SimTime t2 = t + ms(100);
  EXPECT_EQ(t2.as_millis(), 100.0);
  EXPECT_EQ(t2 - t, ms(100));
  EXPECT_EQ(t2 - ms(100), t);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::origin(), SimTime::origin() + us(1));
  EXPECT_LT(SimTime::origin() + sec(5), SimTime::max());
}

TEST(SimTimeTest, NegativeDurationArithmetic) {
  SimTime a = SimTime::origin() + ms(10);
  SimTime b = SimTime::origin() + ms(25);
  EXPECT_EQ(a - b, ms(-15));
  EXPECT_LT(a - b, Duration::zero());
}

}  // namespace
}  // namespace mutsvc::sim

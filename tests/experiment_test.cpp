// Integration tests: the full testbed + application + workload stack, run
// at reduced (but statistically meaningful) scale. These encode the
// paper's qualitative claims as assertions.
#include <gtest/gtest.h>

#include <memory>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/placement/advisor.hpp"
#include "core/placement/graph.hpp"

namespace mutsvc::core {
namespace {

using stats::ClientGroup;

ExperimentSpec short_spec(ConfigLevel level, double seconds = 400.0, double warmup = 60.0) {
  ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::Duration::seconds(seconds);
  spec.warmup = sim::Duration::seconds(warmup);
  return spec;
}

std::unique_ptr<Experiment> run_petstore(ConfigLevel level, double seconds = 400.0) {
  static apps::petstore::PetStoreApp app;  // component defs are immutable
  auto exp = std::make_unique<Experiment>(app.driver(), short_spec(level, seconds),
                                          petstore_calibration());
  exp->run();
  return exp;
}

std::unique_ptr<Experiment> run_rubis(ConfigLevel level, double seconds = 400.0) {
  static apps::rubis::RubisApp app;
  auto exp =
      std::make_unique<Experiment>(app.driver(), short_spec(level, seconds), rubis_calibration());
  exp->run();
  return exp;
}

// --- testbed ----------------------------------------------------------------------

TEST(TestbedTest, Figure2TopologyDistances) {
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  // Main <-> edge: 100 ms one way through the router.
  EXPECT_NEAR(topo.path_latency(n.main_server, n.edge_servers[0]).as_millis(), 100.0, 0.1);
  EXPECT_NEAR(topo.path_latency(n.edge_servers[0], n.edge_servers[1]).as_millis(), 100.0, 0.1);
  // Clients sit on their server's LAN.
  EXPECT_LT(topo.path_latency(n.local_clients, n.main_server).as_millis(), 1.0);
  EXPECT_LT(topo.path_latency(n.remote_clients[0], n.edge_servers[0]).as_millis(), 1.0);
  // The database is one LAN hop from the main server.
  EXPECT_LT(topo.path_latency(n.main_server, n.db_node).as_millis(), 1.0);
}

TEST(TestbedTest, ColocatedDatabaseSharesTheMainNode) {
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedConfig cfg;
  cfg.db_colocated = true;
  TestbedNodes n = build_testbed(topo, cfg);
  EXPECT_EQ(n.db_node, n.main_server);
}

// --- design-rule ladder -------------------------------------------------------------

TEST(LadderTest, CentralizedPlacesEverythingAtMain) {
  apps::petstore::PetStoreApp app;
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  auto plan = build_plan(app.application(), app.metadata(), n, ConfigLevel::kCentralized);
  for (const auto& name : app.application().component_names()) {
    EXPECT_EQ(plan.nodes_of(name).size(), 1u) << name;
    EXPECT_EQ(plan.primary(name), n.main_server) << name;
  }
  EXPECT_FALSE(plan.has(comp::Feature::kRemoteFacade));
  EXPECT_EQ(plan.entry_point(n.remote_clients[0]), n.main_server);
  EXPECT_EQ(plan.update_mode(), comp::UpdateMode::kNone);
}

TEST(LadderTest, RemoteFacadeDeploysWebTierToEdges) {
  apps::petstore::PetStoreApp app;
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  auto plan = build_plan(app.application(), app.metadata(), n, ConfigLevel::kRemoteFacade);
  EXPECT_EQ(plan.nodes_of("PetStoreWeb").size(), 3u);
  EXPECT_EQ(plan.nodes_of("ShoppingCart").size(), 3u);
  EXPECT_EQ(plan.nodes_of("Catalog").size(), 1u);  // façade still central
  EXPECT_TRUE(plan.has(comp::Feature::kRemoteFacade));
  EXPECT_TRUE(plan.has(comp::Feature::kStubCaching));
  EXPECT_EQ(plan.entry_point(n.remote_clients[0]), n.edge_servers[0]);
  EXPECT_EQ(plan.entry_point(n.local_clients), n.main_server);
}

TEST(LadderTest, StatefulComponentCachingAddsRoReplicasAndEdgeFacades) {
  apps::petstore::PetStoreApp app;
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  auto plan =
      build_plan(app.application(), app.metadata(), n, ConfigLevel::kStatefulComponentCaching);
  EXPECT_EQ(plan.nodes_of("Catalog").size(), 3u);  // edge Catalog (§4.3)
  for (const char* e : {"Category", "Product", "Item", "Inventory"}) {
    EXPECT_EQ(plan.ro_replica_nodes(e).size(), 2u) << e;
  }
  EXPECT_EQ(plan.update_mode(), comp::UpdateMode::kBlockingPush);
  EXPECT_FALSE(plan.has_query_cache(n.edge_servers[0]));
}

TEST(LadderTest, QueryCachingAddsEdgeCachesWithAppRefreshMode) {
  apps::rubis::RubisApp app;
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  auto plan = build_plan(app.application(), app.metadata(), n, ConfigLevel::kQueryCaching);
  EXPECT_TRUE(plan.has_query_cache(n.edge_servers[0]));
  EXPECT_TRUE(plan.has_query_cache(n.edge_servers[1]));
  EXPECT_EQ(plan.query_refresh(), comp::QueryRefreshMode::kPush);  // RUBiS pushes
  EXPECT_EQ(plan.nodes_of("SB_Auth").size(), 3u);  // query façades at edges
  EXPECT_EQ(plan.update_mode(), comp::UpdateMode::kBlockingPush);
}

TEST(LadderTest, AsyncUpdatesSwitchesUpdateMode) {
  apps::rubis::RubisApp app;
  sim::Simulator sim;
  net::Topology topo{sim};
  TestbedNodes n = build_testbed(topo);
  auto plan = build_plan(app.application(), app.metadata(), n, ConfigLevel::kAsyncUpdates);
  EXPECT_EQ(plan.update_mode(), comp::UpdateMode::kAsyncPush);
}

TEST(LadderTest, RulesForIsCumulative) {
  EXPECT_EQ(rules_for(ConfigLevel::kCentralized).size(), 0u);
  EXPECT_EQ(rules_for(ConfigLevel::kRemoteFacade).size(), 1u);
  EXPECT_EQ(rules_for(ConfigLevel::kAsyncUpdates).size(), 4u);
}

// --- the paper's qualitative claims ----------------------------------------------------

TEST(PetStoreExperimentTest, CentralizedRemotePaysTwoWanRoundTrips) {
  auto exp = run_petstore(ConfigLevel::kCentralized);
  const auto& r = exp->results();
  for (const char* page : {"Main", "Category", "Product", "Item"}) {
    const double local = r.page_mean_ms("Browser", page, ClientGroup::kLocal);
    const double remote = r.page_mean_ms("Browser", page, ClientGroup::kRemote);
    EXPECT_NEAR(remote - local, 400.0, 25.0) << page;  // §4.1
  }
}

TEST(PetStoreExperimentTest, FacadeMakesSessionPagesEdgeLocal) {
  auto exp = run_petstore(ConfigLevel::kRemoteFacade);
  const auto& r = exp->results();
  // §4.2: "six out of nine page requests can be served locally".
  for (const char* page : {"Main", "Signin", "Checkout", "Place Order", "Billing", "Signout"}) {
    const double local = r.page_mean_ms("Buyer", page, ClientGroup::kLocal);
    const double remote = r.page_mean_ms("Buyer", page, ClientGroup::kRemote);
    EXPECT_LT(std::abs(remote - local), 30.0) << page;
  }
  // Data pages still cross once (~1 RMI, not 2 HTTP RTTs).
  const double item_remote = r.page_mean_ms("Browser", "Item", ClientGroup::kRemote);
  EXPECT_GT(item_remote, 200.0);
  EXPECT_LT(item_remote, 480.0);
}

TEST(PetStoreExperimentTest, ComponentCachingMakesItemLocalButCommitBlocks) {
  auto exp = run_petstore(ConfigLevel::kStatefulComponentCaching, 900.0);
  const auto& r = exp->results();
  const double item_remote = r.page_mean_ms("Browser", "Item", ClientGroup::kRemote);
  EXPECT_LT(item_remote, 200.0);  // served by RO replicas (cold misses allowed)
  // §4.3: "the response time for this page is significantly higher ... for
  // both local and remote buyers".
  const double commit_local = r.page_mean_ms("Buyer", "Commit Order", ClientGroup::kLocal);
  EXPECT_GT(commit_local, 400.0);
}

TEST(PetStoreExperimentTest, AsyncRestoresCommitLatency) {
  auto blocking = run_petstore(ConfigLevel::kStatefulComponentCaching);
  auto async = run_petstore(ConfigLevel::kAsyncUpdates);
  const double commit_blocking =
      blocking->results().page_mean_ms("Buyer", "Commit Order", ClientGroup::kLocal);
  const double commit_async =
      async->results().page_mean_ms("Buyer", "Commit Order", ClientGroup::kLocal);
  EXPECT_LT(commit_async, commit_blocking / 2.0);  // §4.5
  EXPECT_TRUE(async->runtime().updates_quiescent());
}

TEST(PetStoreExperimentTest, BlockingPushIsZeroStalenessGlobally) {
  // §4.3: "a read operation that arrives after a previous write has
  // committed will always read the correct value" — across the entire
  // concurrent workload, not just a controlled sequence.
  auto exp = run_petstore(ConfigLevel::kQueryCaching, 600.0);
  EXPECT_GT(exp->runtime().consistency().reads(), 0u);
  EXPECT_EQ(exp->runtime().consistency().stale_reads(), 0u);
}

TEST(PetStoreExperimentTest, AsyncAllowsBoundedStaleness) {
  auto exp = run_petstore(ConfigLevel::kAsyncUpdates, 600.0);
  const auto& tracker = exp->runtime().consistency();
  // Stale reads are possible but rare (propagation windows are ~100ms out
  // of ~7s think times).
  EXPECT_LT(tracker.stale_fraction(), 0.05);
}

TEST(PetStoreExperimentTest, ServerUtilizationInPaperBands) {
  auto exp = run_petstore(ConfigLevel::kCentralized);
  const auto& n = exp->nodes();
  EXPECT_LT(exp->cpu_utilization(n.main_server), 0.40);  // §3.4
  EXPECT_LT(exp->cpu_utilization(n.db_node), 0.05);      // §3.1
}

TEST(PetStoreExperimentTest, DeterministicForSameSeed) {
  auto a = run_petstore(ConfigLevel::kRemoteFacade, 200.0);
  auto b = run_petstore(ConfigLevel::kRemoteFacade, 200.0);
  EXPECT_DOUBLE_EQ(a->results().pattern_mean_ms("Browser", ClientGroup::kRemote),
                   b->results().pattern_mean_ms("Browser", ClientGroup::kRemote));
  EXPECT_EQ(a->network().messages_sent(), b->network().messages_sent());
}

TEST(RubisExperimentTest, QueryCachingMakesRemoteBrowserNearLocal) {
  // Longer warm-up so the edge caches are filled when measurement starts,
  // matching the paper's one-hour runs.
  static apps::rubis::RubisApp app;
  ExperimentSpec spec = short_spec(ConfigLevel::kQueryCaching, 1500.0, 600.0);
  auto exp = std::make_unique<Experiment>(app.driver(), spec, rubis_calibration());
  exp->run();
  const auto& r = exp->results();
  const double local = r.pattern_mean_ms("Browser", ClientGroup::kLocal);
  const double remote = r.pattern_mean_ms("Browser", ClientGroup::kRemote);
  // §4.4: "the triumphal performance of RUBiS remote browser, now
  // indistinguishable from the local browser" (cold misses allowed).
  EXPECT_LT(remote, local + 40.0);
}

TEST(RubisExperimentTest, BlockingPushPenalizesBidders) {
  auto facade = run_rubis(ConfigLevel::kRemoteFacade);
  auto blocking = run_rubis(ConfigLevel::kStatefulComponentCaching);
  const double bidder_facade =
      facade->results().pattern_mean_ms("Bidder", ClientGroup::kLocal);
  const double bidder_blocking =
      blocking->results().pattern_mean_ms("Bidder", ClientGroup::kLocal);
  // §4.3: "the RUBiS bidder average response time increased".
  EXPECT_GT(bidder_blocking, bidder_facade * 1.5);
}

TEST(RubisExperimentTest, FinalConfigurationBeatsCentralizedEverywhere) {
  auto centralized = run_rubis(ConfigLevel::kCentralized);
  auto final_cfg = run_rubis(ConfigLevel::kAsyncUpdates);
  for (ClientGroup g : {ClientGroup::kLocal, ClientGroup::kRemote}) {
    for (const char* pattern : {"Browser", "Bidder"}) {
      EXPECT_LE(final_cfg->results().pattern_mean_ms(pattern, g),
                centralized->results().pattern_mean_ms(pattern, g) + 5.0)
          << pattern << "/" << to_string(g);
    }
  }
}

TEST(RubisExperimentTest, CustomPlanOverridesLadder) {
  apps::rubis::RubisApp app;
  ExperimentSpec spec = short_spec(ConfigLevel::kCentralized, 200.0);
  spec.custom_plan = [&](const TestbedNodes& nodes) {
    return build_plan(app.application(), app.metadata(), nodes, ConfigLevel::kAsyncUpdates);
  };
  Experiment exp{app.driver(), spec, rubis_calibration()};
  EXPECT_TRUE(exp.runtime().plan().has(comp::Feature::kAsyncUpdates));
}

TEST(PlacementIntegrationTest, AdvisorRediscoversThePaperConfiguration) {
  auto exp = run_petstore(ConfigLevel::kRemoteFacade, 300.0);
  placement::GraphBuildOptions opts;
  opts.window = sim::Duration::seconds(300.0);
  placement::PlacementProblem problem;
  problem.graph = placement::build_graph(exp->runtime().interaction_profile(),
                                         exp->runtime().app(), opts);
  placement::Advice advice =
      placement::advise(problem, placement::Algorithm::kLocalSearch, /*seed=*/5);

  auto contains = [](const std::vector<std::string>& v, const char* s) {
    for (const auto& x : v) {
      if (x == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(advice.replicate_components, "PetStoreWeb"));
  EXPECT_TRUE(contains(advice.replicate_components, "Catalog"));
  EXPECT_TRUE(contains(advice.read_only_entities, "Item"));
  EXPECT_TRUE(contains(advice.read_only_entities, "Inventory"));
  EXPECT_FALSE(contains(advice.replicate_components, "OrderProcessor"));
  EXPECT_GT(advice.improvement_factor(), 5.0);
}

}  // namespace
}  // namespace mutsvc::core

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "cache/consistency.hpp"
#include "cache/query_cache.hpp"
#include "cache/read_only_cache.hpp"
#include "cache/update.hpp"

namespace mutsvc::cache {
namespace {

db::Row row(std::int64_t id, double price) { return db::Row{id, price}; }

// --- ReadOnlyCache -----------------------------------------------------------

TEST(ReadOnlyCacheTest, MissThenFillThenHit) {
  ReadOnlyCache c{"Item"};
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.misses(), 1u);
  c.fill(1, row(1, 9.99), 3);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 3u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(ReadOnlyCacheTest, PushOverwritesAndCounts) {
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 9.99), 1);
  c.apply_push(1, row(1, 19.99), 2);
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(db::as_real(entry->row[1]), 19.99);
  EXPECT_EQ(entry->version, 2u);
  EXPECT_EQ(c.pushes_applied(), 1u);
}

TEST(ReadOnlyCacheTest, InvalidateSingleAndAll) {
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 1.0), 1);
  c.fill(2, row(2, 2.0), 1);
  c.invalidate(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  c.invalidate_all();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.invalidations(), 2u);
}

TEST(ReadOnlyCacheTest, HitRateZeroWhenUntouched) {
  ReadOnlyCache c{"Item"};
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(ReadOnlyCacheTest, TimeoutInvalidationExpiresStaleEntries) {
  using sim::ms;
  using sim::SimTime;
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 1.0), 1, SimTime::origin());
  // Fresh within the TTL.
  auto fresh = c.get_if_fresh(1, SimTime::origin() + ms(500), sim::sec(1));
  EXPECT_TRUE(fresh.has_value());
  // Expired past the TTL: entry dropped, counted as a miss.
  auto expired = c.get_if_fresh(1, SimTime::origin() + sim::sec(2), sim::sec(1));
  EXPECT_FALSE(expired.has_value());
  EXPECT_EQ(c.timeout_invalidations(), 1u);
  EXPECT_FALSE(c.contains(1));
}

TEST(ReadOnlyCacheTest, ZeroTtlNeverExpires) {
  using sim::SimTime;
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 1.0), 1, SimTime::origin());
  auto entry = c.get_if_fresh(1, SimTime::origin() + sim::sec(3600), sim::Duration::zero());
  EXPECT_TRUE(entry.has_value());
  EXPECT_EQ(c.timeout_invalidations(), 0u);
}

TEST(ReadOnlyCacheTest, PushRefreshesTheTtlClock) {
  using sim::SimTime;
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 1.0), 1, SimTime::origin());
  c.apply_push(1, row(1, 2.0), 2, SimTime::origin() + sim::sec(10));
  // 11s after the fill but only 1s after the push: still fresh.
  auto entry = c.get_if_fresh(1, SimTime::origin() + sim::sec(11), sim::sec(5));
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(db::as_real(entry->row[1]), 2.0);
}

TEST(ReadOnlyCacheTest, ReorderedPushKeepsNewerEntry) {
  // Regression: two pushes delivered out of order (v2's wide-area hop
  // overtaken by v1's retry, or per-edge sequencing across batches). The
  // replica must keep the newer entry and reject the older push, exactly as
  // fill() already does for stale pull-refreshes.
  ReadOnlyCache c{"Item"};
  c.apply_push(1, row(1, 2.0), 2);
  c.apply_push(1, row(1, 1.0), 1);  // late, older: must not regress
  auto entry = c.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 2u);
  EXPECT_DOUBLE_EQ(db::as_real(entry->row[1]), 2.0);
  EXPECT_EQ(c.pushes_applied(), 1u);
  EXPECT_EQ(c.stale_pushes_rejected(), 1u);
}

TEST(ReadOnlyCacheTest, EqualVersionPushReapplies) {
  // At-least-once redelivery of the same batch is idempotent in content;
  // re-applying an equal version is allowed (not counted as stale).
  ReadOnlyCache c{"Item"};
  c.apply_push(1, row(1, 2.0), 2);
  c.apply_push(1, row(1, 2.0), 2);
  EXPECT_EQ(c.pushes_applied(), 2u);
  EXPECT_EQ(c.stale_pushes_rejected(), 0u);
}

TEST(ReadOnlyCacheTest, ResetStatsClearsCountersKeepsEntries) {
  using sim::SimTime;
  ReadOnlyCache c{"Item"};
  c.fill(1, row(1, 1.0), 2, SimTime::origin());
  (void)c.get(1);
  (void)c.get(9);
  c.apply_push(1, row(1, 2.0), 3);
  c.apply_push(1, row(1, 1.5), 1);
  c.fill(1, row(1, 0.5), 1);  // stale fill, rejected
  c.invalidate(1);
  (void)c.get_if_fresh(2, SimTime::origin(), sim::sec(1));
  c.reset_stats();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.pushes_applied(), 0u);
  EXPECT_EQ(c.invalidations(), 0u);
  EXPECT_EQ(c.stale_fills_rejected(), 0u);
  EXPECT_EQ(c.stale_pushes_rejected(), 0u);
  EXPECT_EQ(c.timeout_invalidations(), 0u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

// --- ConsistencyTracker: coordinated version allocation -------------------------

TEST(ConsistencyTrackerTest, AllocateIsMonotoneAcrossConcurrentTransactions) {
  ConsistencyTracker t;
  // Two transactions allocate before either advances: distinct versions.
  const std::uint64_t a = t.allocate("k");
  const std::uint64_t b = t.allocate("k");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.master_version("k"), 0u);  // readable master untouched
  t.advance_to("k", a);
  EXPECT_EQ(t.master_version("k"), 1u);
  t.advance_to("k", b);
  EXPECT_EQ(t.master_version("k"), 2u);
  // Late advance with an older version is a no-op.
  t.advance_to("k", a);
  EXPECT_EQ(t.master_version("k"), 2u);
  // Next allocation continues above everything seen.
  EXPECT_EQ(t.allocate("k"), 3u);
}

TEST(ConsistencyTrackerTest, WriteWriteConcurrencyOnSharedQueryKeyStaysZeroStale) {
  // Two transactions write entities feeding the same aggregate query key.
  // Under blocking push each installs its pushed entries at replicas before
  // advancing the master — whatever the interleaving of allocate/advance_to,
  // a reader that observes the replica's installed version is never stale.
  ConsistencyTracker t;
  const std::string q = "query:topSellers";

  // Interleaving 1: allocate/allocate, advance in allocation order.
  const std::uint64_t v1 = t.allocate(q);
  const std::uint64_t v2 = t.allocate(q);
  t.advance_to(q, v1);
  t.observe_read(q, std::max(v1, t.master_version(q)));
  t.advance_to(q, v2);
  t.observe_read(q, t.master_version(q));
  EXPECT_EQ(t.stale_reads(), 0u);

  // Interleaving 2: the later transaction commits (and advances) first —
  // the replica holds v4; when v3's advance arrives late it must not
  // regress the master below what readers already saw.
  const std::uint64_t v3 = t.allocate(q);
  const std::uint64_t v4 = t.allocate(q);
  EXPECT_LT(v3, v4);
  t.advance_to(q, v4);
  t.observe_read(q, v4);
  t.advance_to(q, v3);  // late, smaller: no-op
  EXPECT_EQ(t.master_version(q), v4);
  t.observe_read(q, v4);
  EXPECT_EQ(t.stale_reads(), 0u);
  EXPECT_EQ(t.reads(), 4u);
}

TEST(ConsistencyTrackerTest, AllocationEntriesAreReclaimedWhenMasterCatchesUp) {
  ConsistencyTracker t;
  const std::uint64_t a = t.allocate("k1");
  const std::uint64_t b = t.allocate("k1");
  (void)t.allocate("k2");
  EXPECT_EQ(t.pending_allocations(), 2u);
  t.advance_to("k1", a);
  // b is still in flight for k1: the entry must survive.
  EXPECT_EQ(t.pending_allocations(), 2u);
  t.advance_to("k1", b);
  EXPECT_EQ(t.pending_allocations(), 1u);  // only k2 outstanding
  // Reclamation must not change allocation monotonicity.
  EXPECT_EQ(t.allocate("k1"), b + 1);
  t.advance_to("k1", b + 1);
  t.advance_to("k2", 1);
  EXPECT_EQ(t.pending_allocations(), 0u);
}

// --- QueryCache ----------------------------------------------------------------

TEST(QueryCacheTest, FillGetInvalidate) {
  QueryCache qc;
  EXPECT_FALSE(qc.get("k1").has_value());
  qc.fill("k1", {row(1, 1.0), row(2, 2.0)}, 5);
  auto entry = qc.get("k1");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->rows.size(), 2u);
  EXPECT_EQ(entry->version, 5u);
  qc.invalidate("k1");
  EXPECT_FALSE(qc.contains("k1"));
  EXPECT_EQ(qc.invalidations(), 1u);
}

TEST(QueryCacheTest, InvalidateMissingIsNotCounted) {
  QueryCache qc;
  qc.invalidate("ghost");
  EXPECT_EQ(qc.invalidations(), 0u);
}

TEST(QueryCacheTest, PrefixInvalidation) {
  QueryCache qc;
  qc.fill("finder:bids:item:7#a", {}, 1);
  qc.fill("finder:bids:item:7#b", {}, 1);
  qc.fill("finder:bids:item:8", {}, 1);
  EXPECT_EQ(qc.invalidate_prefix("finder:bids:item:7"), 2u);
  EXPECT_TRUE(qc.contains("finder:bids:item:8"));
}

TEST(QueryCacheTest, PushRefreshReplacesRows) {
  QueryCache qc;
  qc.fill("k", {row(1, 1.0)}, 1);
  qc.apply_push("k", {row(1, 1.0), row(2, 2.0)}, 2);
  auto entry = qc.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->rows.size(), 2u);
  EXPECT_EQ(qc.pushes_applied(), 1u);
}

TEST(QueryCacheTest, ReorderedPushKeepsNewerRows) {
  // Regression: under async updates two batches can reach an edge out of
  // order (per-subscriber redelivery after a partition). The cache must
  // keep the v2 result set when v1's push lands late.
  QueryCache qc;
  qc.apply_push("k", {row(1, 1.0), row(2, 2.0)}, 2);
  qc.apply_push("k", {row(1, 1.0)}, 1);  // late, older: must not regress
  auto entry = qc.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 2u);
  EXPECT_EQ(entry->rows.size(), 2u);
  EXPECT_EQ(qc.pushes_applied(), 1u);
  EXPECT_EQ(qc.stale_pushes_rejected(), 1u);
}

TEST(QueryCacheTest, ResetStatsClearsCountersKeepsEntries) {
  QueryCache qc;
  qc.fill("k", {row(1, 1.0)}, 1);
  (void)qc.get("k");
  (void)qc.get("ghost");
  qc.apply_push("k", {row(1, 2.0)}, 3);
  qc.apply_push("k", {row(1, 1.0)}, 2);
  qc.invalidate("k");
  qc.apply_push("k", {row(1, 2.0)}, 3);  // re-install after invalidation
  qc.reset_stats();
  EXPECT_EQ(qc.hits(), 0u);
  EXPECT_EQ(qc.misses(), 0u);
  EXPECT_EQ(qc.pushes_applied(), 0u);
  EXPECT_EQ(qc.invalidations(), 0u);
  EXPECT_EQ(qc.stale_pushes_rejected(), 0u);
  EXPECT_TRUE(qc.contains("k"));  // entries survive a stats reset
}

TEST(QueryCacheTest, ClearDropsEverything) {
  QueryCache qc;
  qc.fill("a", {}, 1);
  qc.fill("b", {}, 1);
  qc.clear();
  EXPECT_EQ(qc.size(), 0u);
}

// --- ConsistencyTracker -----------------------------------------------------------

TEST(ConsistencyTrackerTest, BumpAdvancesVersion) {
  ConsistencyTracker t;
  EXPECT_EQ(t.master_version("Item:1"), 0u);
  EXPECT_EQ(t.bump("Item:1"), 1u);
  EXPECT_EQ(t.bump("Item:1"), 2u);
  EXPECT_EQ(t.master_version("Item:1"), 2u);
  EXPECT_EQ(t.master_version("Item:2"), 0u);
}

TEST(ConsistencyTrackerTest, FreshReadsNotStale) {
  ConsistencyTracker t;
  (void)t.bump("k");
  t.observe_read("k", 1);
  EXPECT_EQ(t.reads(), 1u);
  EXPECT_EQ(t.stale_reads(), 0u);
  EXPECT_DOUBLE_EQ(t.stale_fraction(), 0.0);
}

TEST(ConsistencyTrackerTest, StaleReadsCountedWithLag) {
  ConsistencyTracker t;
  (void)t.bump("k");
  (void)t.bump("k");
  (void)t.bump("k");
  t.observe_read("k", 1);  // lag 2
  t.observe_read("k", 3);  // fresh
  EXPECT_EQ(t.stale_reads(), 1u);
  EXPECT_DOUBLE_EQ(t.stale_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(t.mean_version_lag(), 2.0);
}

TEST(ConsistencyTrackerTest, ReadNewerThanMasterNotStale) {
  // Blocking push installs version master+1 at replicas before the master
  // version advances; such reads must not be counted stale.
  ConsistencyTracker t;
  (void)t.bump("k");
  t.observe_read("k", 2);
  EXPECT_EQ(t.stale_reads(), 0u);
}

TEST(ConsistencyTrackerTest, ResetKeepsVersions) {
  ConsistencyTracker t;
  (void)t.bump("k");
  t.observe_read("k", 0);
  t.reset_read_stats();
  EXPECT_EQ(t.reads(), 0u);
  EXPECT_EQ(t.stale_reads(), 0u);
  EXPECT_EQ(t.master_version("k"), 1u);
}

// --- UpdateBatch -----------------------------------------------------------------

TEST(UpdateBatchTest, EmptyAndWireBytes) {
  UpdateBatch b;
  EXPECT_TRUE(b.empty());
  b.entities.push_back(EntityUpdate{"Item", 1, row(1, 9.99), 2});
  EXPECT_FALSE(b.empty());
  net::Bytes full = b.wire_bytes(false);
  net::Bytes delta = b.wire_bytes(true);
  EXPECT_GT(full, 0);
  EXPECT_LT(delta, full);  // §4.3: transfer only modified fields
}

// --- merge_into: the coalescing merge ---------------------------------------

TEST(MergeIntoTest, NewerVersionWinsRegardlessOfArrivalOrder) {
  // Version-LWW, not call-order-LWW: merging {v2 then v1} and {v1 then v2}
  // both leave v2 — the property that makes coalescing safe under the
  // reordering the async tier can produce.
  UpdateBatch newer_first;
  newer_first.entities.push_back(EntityUpdate{"Item", 1, row(1, 2.0), 2});
  merge_into(newer_first, UpdateBatch{{EntityUpdate{"Item", 1, row(1, 1.0), 1}}, {}});

  UpdateBatch older_first;
  older_first.entities.push_back(EntityUpdate{"Item", 1, row(1, 1.0), 1});
  merge_into(older_first, UpdateBatch{{EntityUpdate{"Item", 1, row(1, 2.0), 2}}, {}});

  for (const UpdateBatch* b : {&newer_first, &older_first}) {
    ASSERT_EQ(b->entities.size(), 1u);
    EXPECT_EQ(b->entities[0].version, 2u);
    EXPECT_DOUBLE_EQ(db::as_real(b->entities[0].row[1]), 2.0);
  }
}

TEST(MergeIntoTest, EqualVersionsKeepIncoming) {
  // Ties carry identical state (versions are allocated per key), so either
  // choice is correct; the incoming entry wins to match apply_push's
  // "equal version reapplies" rule.
  UpdateBatch into;
  into.queries.push_back(QueryRefresh{"k", {row(1, 1.0)}, 3, false});
  merge_into(into, UpdateBatch{{}, {QueryRefresh{"k", {row(1, 1.0), row(2, 2.0)}, 3, false}}});
  ASSERT_EQ(into.queries.size(), 1u);
  EXPECT_EQ(into.queries[0].rows.size(), 2u);
}

TEST(MergeIntoTest, DisjointKeysAllSurvive) {
  // No final state is dropped: entries for different (entity, pk) or
  // cache_key never collapse into each other.
  UpdateBatch into;
  into.entities.push_back(EntityUpdate{"Item", 1, row(1, 1.0), 1});
  into.queries.push_back(QueryRefresh{"q1", {}, 1, true});
  UpdateBatch from;
  from.entities.push_back(EntityUpdate{"Item", 2, row(2, 2.0), 1});
  from.entities.push_back(EntityUpdate{"Inventory", 1, row(1, 7.0), 4});
  from.queries.push_back(QueryRefresh{"q2", {row(5, 5.0)}, 2, false});
  merge_into(into, std::move(from));
  EXPECT_EQ(into.entities.size(), 3u);
  EXPECT_EQ(into.queries.size(), 2u);
}

TEST(MergeIntoTest, CoalescedDeliveryEqualsIndividualDeliveryUnderReordering) {
  // The end-to-end guarantee, at unit scale: a random write history applied
  // to one replica as individual out-of-order pushes and to another as
  // out-of-order *coalesced* batches converges to the same final state —
  // the per-key newest version — because merge_into and apply_push are both
  // version-monotonic. Coalescing can only reduce deliveries, never change
  // the outcome.
  std::mt19937_64 rng{0xC0A1ULL};  // simlint:allow(raw-random) fixed-seed test data
  std::vector<EntityUpdate> history;
  std::uint64_t version = 0;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t pk = 1 + static_cast<std::int64_t>(rng() % 10);
    history.push_back(
        EntityUpdate{"Item", pk, row(pk, static_cast<double>(i)), ++version});
  }

  // Replica A: every push individually, shuffled.
  std::vector<EntityUpdate> individual = history;
  std::shuffle(individual.begin(), individual.end(), rng);
  ReadOnlyCache a{"Item"};
  for (const EntityUpdate& e : individual) a.apply_push(e.pk, e.row, e.version);

  // Replica B: history chopped into batches, each batch internally merged
  // (what the Coalescer's lanes do), batches delivered shuffled.
  std::vector<UpdateBatch> batches;
  for (std::size_t i = 0; i < history.size();) {
    UpdateBatch b;
    const std::size_t n = 1 + rng() % 8;
    for (std::size_t j = 0; j < n && i < history.size(); ++j, ++i) {
      merge_into(b, UpdateBatch{{history[i]}, {}});
    }
    batches.push_back(std::move(b));
  }
  std::shuffle(batches.begin(), batches.end(), rng);
  ReadOnlyCache b{"Item"};
  for (const UpdateBatch& batch : batches) {
    for (const EntityUpdate& e : batch.entities) b.apply_push(e.pk, e.row, e.version);
  }

  // Expected final state: per-pk newest version from the history.
  std::map<std::int64_t, EntityUpdate> want;
  for (const EntityUpdate& e : history) {
    auto [it, fresh] = want.try_emplace(e.pk, e);
    if (!fresh && e.version > it->second.version) it->second = e;
  }
  for (const auto& [pk, e] : want) {
    auto ea = a.get(pk);
    auto eb = b.get(pk);
    ASSERT_TRUE(ea.has_value());
    ASSERT_TRUE(eb.has_value());
    EXPECT_EQ(ea->version, e.version) << "pk " << pk;
    EXPECT_EQ(eb->version, e.version) << "pk " << pk;
    EXPECT_EQ(ea->row, e.row) << "pk " << pk;
    EXPECT_EQ(eb->row, e.row) << "pk " << pk;
  }
}

TEST(MergeIntoTest, QueryRefreshMergeNeverRollsBackAQueryCache) {
  // Same property for the query-cache half of a batch, including
  // invalidation-only refreshes: the merged batch applied after a newer
  // direct push leaves the newer rows in place.
  QueryCache qc;
  qc.apply_push("k", {row(1, 9.0)}, 5);
  UpdateBatch lagging;
  lagging.queries.push_back(QueryRefresh{"k", {row(1, 1.0)}, 2, false});
  merge_into(lagging, UpdateBatch{{}, {QueryRefresh{"k", {}, 3, true}}});
  ASSERT_EQ(lagging.queries.size(), 1u);
  EXPECT_EQ(lagging.queries[0].version, 3u);  // merge kept the newer refresh
  qc.apply_push("k", lagging.queries[0].rows, lagging.queries[0].version);
  auto entry = qc.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->version, 5u);  // replica rejected the whole lagging batch
  EXPECT_EQ(qc.stale_pushes_rejected(), 1u);
}

TEST(UpdateBatchTest, InvalidationOnlyQueriesAreSmall) {
  UpdateBatch push;
  QueryRefresh r;
  r.cache_key = "k";
  r.rows = {row(1, 1.0), row(2, 2.0), row(3, 3.0)};
  push.queries.push_back(r);

  UpdateBatch invalidate;
  QueryRefresh inv;
  inv.cache_key = "k";
  inv.invalidate_only = true;
  invalidate.queries.push_back(inv);

  EXPECT_GT(push.wire_bytes(), invalidate.wire_bytes());
}

}  // namespace
}  // namespace mutsvc::cache

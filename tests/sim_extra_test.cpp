// Deeper kernel coverage: stress determinism, task lifetime semantics,
// resource sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/future.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mutsvc::sim {
namespace {

TEST(SimulatorStressTest, RandomInsertionOrderFiresSorted) {
  Simulator sim{99};
  RngStream rng{123};
  std::vector<double> fire_times;
  std::vector<double> scheduled;
  for (int i = 0; i < 5000; ++i) {
    double at_ms = rng.uniform(0.0, 1000.0);
    scheduled.push_back(at_ms);
    sim.schedule_at(SimTime::origin() + ms(at_ms),
                    [&fire_times, &sim] { fire_times.push_back(sim.now().as_millis()); });
  }
  sim.run_until();
  ASSERT_EQ(fire_times.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  std::sort(scheduled.begin(), scheduled.end());
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_NEAR(fire_times[i], scheduled[i], 1e-3);
  }
  EXPECT_EQ(sim.executed_events(), 5000u);
}

TEST(SimulatorStressTest, IdenticalSeedsProduceIdenticalSchedules) {
  auto run = [](std::uint64_t seed) {
    Simulator sim{seed};
    RngStream rng = sim.rng().fork("load");
    std::vector<double> log;
    for (int i = 0; i < 200; ++i) {
      sim.spawn([](Simulator& s, RngStream& r, std::vector<double>& log) -> Task<void> {
        co_await s.wait(Duration::seconds(r.uniform(0.0, 1.0)));
        log.push_back(s.now().as_millis());
      }(sim, rng, log));
    }
    sim.run_until();
    return log;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(TaskTest, MoveTransfersOwnership) {
  Simulator sim;
  auto make = [](Simulator& s) -> Task<int> {
    co_await s.wait(ms(1));
    co_return 5;
  };
  Task<int> a = make(sim);
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  a = std::move(b);  // move assignment destroys b's (empty) state safely
  EXPECT_TRUE(a.valid());

  int out = 0;
  sim.spawn([](Task<int> t, int& out) -> Task<void> { out = co_await std::move(t); }(
      std::move(a), out));
  sim.run_until();
  EXPECT_EQ(out, 5);
}

TEST(TaskTest, UnstartedTaskIsDestroyedSafely) {
  Simulator sim;
  {
    Task<void> never = [](Simulator& s) -> Task<void> { co_await s.wait(ms(1)); }(sim);
    EXPECT_TRUE(never.valid());
    EXPECT_FALSE(never.done());
  }  // dtor destroys the suspended frame without leaking
  EXPECT_TRUE(sim.idle());
}

TEST(TaskTest, SpawnInvalidTaskIsNoop) {
  Simulator sim;
  Task<void> empty;
  sim.spawn(std::move(empty));
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, YieldReentersAtBackOfCurrentInstant) {
  Simulator sim;
  std::vector<int> order;
  // An event already queued at t=0; the spawned task runs eagerly, yields,
  // and must resume only after that earlier event fires.
  sim.schedule_after(Duration::zero(), [&order] { order.push_back(2); });
  sim.spawn([](Simulator& s, std::vector<int>& o) -> Task<void> {
    o.push_back(1);
    co_await s.yield();
    o.push_back(3);
  }(sim, order));
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, PendingEventsCount) {
  Simulator sim;
  sim.schedule_after(ms(1), [] {});
  sim.schedule_after(ms(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run_until();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Parameterized makespan law: n jobs of length d on k servers finish at
// ceil(n/k)*d.
class FifoMakespan : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FifoMakespan, MatchesTheory) {
  const auto [servers, jobs] = GetParam();
  Simulator sim;
  FifoResource cpu{sim, static_cast<std::size_t>(servers)};
  for (int i = 0; i < jobs; ++i) {
    sim.spawn([](FifoResource& r) -> Task<void> { co_await r.consume(ms(10)); }(cpu));
  }
  sim.run_until();
  const int waves = (jobs + servers - 1) / servers;
  EXPECT_DOUBLE_EQ(sim.now().as_millis(), 10.0 * waves);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FifoMakespan,
                         ::testing::Values(std::make_tuple(1, 7), std::make_tuple(2, 7),
                                           std::make_tuple(2, 8), std::make_tuple(4, 13),
                                           std::make_tuple(8, 64)));

TEST(FutureTest, SignalFiredBeforeWaitResumesImmediately) {
  Simulator sim;
  Signal sig{sim};
  sig.fire();
  double woke_at = -1.0;
  sim.spawn([](Signal& s, Simulator& sim, double& at) -> Task<void> {
    co_await s.wait();
    at = sim.now().as_millis();
  }(sig, sim, woke_at));
  sim.run_until();
  EXPECT_DOUBLE_EQ(woke_at, 0.0);
}

TEST(RngStreamTest, DeepForkChainsStayIndependent) {
  RngStream root{5};
  RngStream a = root.fork("x").fork("y").fork("z");
  RngStream b = root.fork("x").fork("y").fork("w");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace mutsvc::sim

// Deeper network coverage: parameterized latency/bandwidth laws, byte
// accounting, and protocol edge cases.
#include <gtest/gtest.h>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::net {
namespace {

using sim::Duration;
using sim::ms;
using sim::SimTime;
using sim::Simulator;
using sim::Task;

struct Pair {
  Simulator sim{3};
  net::Topology topo{sim};
  NodeId a, b;
  net::Network net{sim, topo, Duration::zero()};

  Pair(double latency_ms, double bandwidth_bps) {
    a = topo.add_node("a", NodeRole::kAppServer);
    b = topo.add_node("b", NodeRole::kAppServer);
    topo.add_link(a, b, ms(latency_ms), bandwidth_bps);
  }

  double timed(Task<void> t) {
    SimTime start = sim.now();
    sim.spawn(std::move(t));
    sim.run_until();
    return (sim.now() - start).as_millis();
  }
};

/// Delivery-time law: latency + size*8/bandwidth.
class DeliveryLaw : public ::testing::TestWithParam<std::tuple<double, double, Bytes>> {};

TEST_P(DeliveryLaw, MatchesTheory) {
  const auto [latency_ms, bw_mbps, size] = GetParam();
  Pair p{latency_ms, bw_mbps * 1e6};
  double t = p.timed([](Pair& p, Bytes size) -> Task<void> {
    co_await p.net.deliver(p.a, p.b, size);
  }(p, size));
  const double expected = latency_ms + static_cast<double>(size) * 8.0 / (bw_mbps * 1e6) * 1e3;
  EXPECT_NEAR(t, expected, expected * 0.01 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeliveryLaw,
    ::testing::Values(std::make_tuple(1.0, 100.0, Bytes{1000}),
                      std::make_tuple(10.0, 100.0, Bytes{100000}),
                      std::make_tuple(100.0, 100.0, Bytes{1000}),
                      std::make_tuple(100.0, 10.0, Bytes{1000000}),
                      std::make_tuple(50.0, 1.0, Bytes{50000}),
                      std::make_tuple(0.2, 1000.0, Bytes{1500})));

TEST(NetworkExtraTest, ByteAccountingMatchesPayloadPlusOverheads) {
  Pair p{10.0, 100e6};
  HttpConfig cfg;
  HttpTransport http{p.net, cfg};
  (void)p.timed([](HttpTransport& http, Pair& p) -> Task<void> {
    co_await http.request(p.a, p.b, 400, []() -> Task<Bytes> { co_return 6000; });
  }(http, p));
  // SYN + SYN-ACK + (request 400+overhead) + (response 6000+overhead).
  const Bytes expected = cfg.handshake_bytes * 2 + cfg.request_overhead + 400 +
                         cfg.response_overhead + 6000;
  EXPECT_EQ(p.net.bytes_sent(), expected);
  EXPECT_EQ(p.net.messages_sent(), 4u);
}

TEST(NetworkExtraTest, InfiniteBandwidthLinkHasNoSerializationDelay) {
  Pair p{5.0, 0.0};  // 0 => infinite
  double t = p.timed([](Pair& p) -> Task<void> {
    co_await p.net.deliver(p.a, p.b, 100'000'000);
  }(p));
  EXPECT_NEAR(t, 5.0, 0.01);
}

TEST(NetworkExtraTest, PerHopOverheadApplied) {
  Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", NodeRole::kAppServer);
  auto r = topo.add_node("r", NodeRole::kRouter);
  auto b = topo.add_node("b", NodeRole::kAppServer);
  topo.add_link(a, r, ms(1));
  topo.add_link(r, b, ms(1));
  net::Network net{sim, topo, /*per_hop_overhead=*/ms(0.5)};
  SimTime start = sim.now();
  sim.spawn([](net::Network& n, NodeId a, NodeId b) -> Task<void> {
    co_await n.deliver(a, b, 100);
  }(net, a, b));
  sim.run_until();
  EXPECT_NEAR((sim.now() - start).as_millis(), 2.0 + 2 * 0.5, 0.01);
}

TEST(RmiExtraTest, DynamicReplySizeAffectsTransferTime) {
  Pair p{1.0, 1e6};  // slow 1 Mbit/s link makes sizes visible
  RmiConfig cfg;
  cfg.extra_rtt_prob = 0.0;
  cfg.dgc_traffic_factor = 1.0;
  RmiTransport rmi{p.net, cfg};
  double small = p.timed([](RmiTransport& rmi, Pair& p) -> Task<void> {
    co_await rmi.call_dynamic(p.a, p.b, 100, []() -> Task<Bytes> { co_return 100; });
  }(rmi, p));
  double large = p.timed([](RmiTransport& rmi, Pair& p) -> Task<void> {
    co_await rmi.call_dynamic(p.a, p.b, 100, []() -> Task<Bytes> { co_return 100000; });
  }(rmi, p));
  // 99,900 extra bytes at 1 Mbit/s ≈ 799 ms more.
  EXPECT_NEAR(large - small, 799.2, 5.0);
}

TEST(RmiExtraTest, LocalDynamicCallRunsWorkOnly) {
  Pair p{100.0, 100e6};
  RmiConfig cfg;
  cfg.extra_rtt_prob = 1.0;  // must not apply to local calls
  RmiTransport rmi{p.net, cfg};
  double t = p.timed([](RmiTransport& rmi, Pair& p) -> Task<void> {
    co_await rmi.call_dynamic(p.a, p.a, 100, [&p]() -> Task<Bytes> {
      co_await p.sim.wait(ms(7));
      co_return 10;
    });
  }(rmi, p));
  EXPECT_NEAR(t, 7.0, 0.01);
  EXPECT_EQ(rmi.extra_round_trips(), 0u);
}

TEST(HttpExtraTest, SeparateClientsKeepSeparateKeepAlivePools) {
  Simulator sim;
  net::Topology topo{sim};
  auto c1 = topo.add_node("c1", NodeRole::kClientMachine);
  auto c2 = topo.add_node("c2", NodeRole::kClientMachine);
  auto s = topo.add_node("s", NodeRole::kAppServer);
  topo.add_link(c1, s, ms(10));
  topo.add_link(c2, s, ms(10));
  net::Network net{sim, topo, Duration::zero()};
  HttpConfig cfg;
  cfg.keep_alive = true;
  HttpTransport http{net, cfg};
  auto handler = []() -> Task<Bytes> { co_return 100; };
  sim.spawn([](HttpTransport& http, NodeId c1, NodeId c2, NodeId s,
               std::function<Task<Bytes>()> handler) -> Task<void> {
    co_await http.request(c1, s, 100, handler);
    co_await http.request(c2, s, 100, handler);  // different client: new handshake
    co_await http.request(c1, s, 100, handler);  // pooled
  }(http, c1, c2, s, handler));
  sim.run_until();
  EXPECT_EQ(http.handshakes(), 2u);
  EXPECT_EQ(http.requests(), 3u);
}

TEST(TopologyExtraTest, RoutesRecomputeAfterAddingBetterLink) {
  Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", NodeRole::kAppServer);
  auto b = topo.add_node("b", NodeRole::kAppServer);
  topo.add_link(a, b, ms(100));
  EXPECT_NEAR(topo.path_latency(a, b).as_millis(), 100.0, 0.01);
  topo.add_link(a, b, ms(10));  // new faster parallel link
  EXPECT_NEAR(topo.path_latency(a, b).as_millis(), 10.0, 0.01);
}

}  // namespace
}  // namespace mutsvc::net

#include <gtest/gtest.h>

#include "component/descriptor.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::comp {
namespace {

struct DescriptorWorld {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::NodeId main, edge1, edge2, clients;

  DescriptorWorld() {
    main = topo.add_node("main-as", net::NodeRole::kAppServer);
    edge1 = topo.add_node("edge-as-1", net::NodeRole::kAppServer);
    edge2 = topo.add_node("edge-as-2", net::NodeRole::kAppServer);
    clients = topo.add_node("clients-main", net::NodeRole::kClientMachine);
  }

  DeploymentPlan sample_plan() {
    DeploymentPlan plan;
    plan.set_main_server(main);
    plan.add_edge_server(edge1);
    plan.add_edge_server(edge2);
    plan.place("Catalog", main);
    plan.place("Catalog", edge1);
    plan.place("Web", main);
    plan.enable(Feature::kRemoteFacade);
    plan.enable(Feature::kStubCaching);
    plan.enable(Feature::kAsyncUpdates);
    plan.set_query_refresh(QueryRefreshMode::kPull);
    plan.set_staleness_bound(4);
    plan.replicate_read_only("Item", edge1);
    plan.replicate_read_only("Item", edge2);
    plan.add_query_cache(edge2);
    plan.set_entry_point(clients, main);
    return plan;
  }
};

TEST(DescriptorTest, SerializeMentionsAllSections) {
  DescriptorWorld w;
  std::string text = serialize_descriptor(w.sample_plan(), w.topo);
  for (const char* needle :
       {"main-server: main-as", "edge-servers: edge-as-1, edge-as-2", "remote-facade",
        "asynchronous-updates", "query-refresh: pull", "staleness-bound: 4", "[placement]",
        "Catalog: main-as, edge-as-1", "[read-only-replicas]", "Item: edge-as-1, edge-as-2",
        "[query-caches]", "[entry-points]", "clients-main: main-as"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

TEST(DescriptorTest, RoundTripPreservesEverything) {
  DescriptorWorld w;
  DeploymentPlan original = w.sample_plan();
  DeploymentPlan parsed = parse_descriptor(serialize_descriptor(original, w.topo), w.topo);

  EXPECT_EQ(parsed.main_server(), original.main_server());
  EXPECT_EQ(parsed.edge_servers(), original.edge_servers());
  for (Feature f : {Feature::kRemoteFacade, Feature::kStubCaching,
                    Feature::kStatefulComponentCaching, Feature::kQueryCaching,
                    Feature::kAsyncUpdates}) {
    EXPECT_EQ(parsed.has(f), original.has(f)) << to_string(f);
  }
  EXPECT_EQ(parsed.query_refresh(), original.query_refresh());
  EXPECT_EQ(parsed.staleness_bound(), original.staleness_bound());
  EXPECT_EQ(parsed.placements(), original.placements());
  EXPECT_EQ(parsed.ro_replicas(), original.ro_replicas());
  EXPECT_EQ(parsed.query_cache_nodes(), original.query_cache_nodes());
  EXPECT_EQ(parsed.entry_point(w.clients), original.entry_point(w.clients));
}

TEST(DescriptorTest, SecondRoundTripIsIdentical) {
  DescriptorWorld w;
  std::string once = serialize_descriptor(w.sample_plan(), w.topo);
  std::string twice = serialize_descriptor(parse_descriptor(once, w.topo), w.topo);
  EXPECT_EQ(once, twice);
}

TEST(DescriptorTest, CommentsAndBlankLinesIgnored) {
  DescriptorWorld w;
  DeploymentPlan plan = parse_descriptor(
      "# a comment\n"
      "\n"
      "main-server: main-as  # trailing comment\n"
      "edge-servers: edge-as-1\n",
      w.topo);
  EXPECT_EQ(plan.main_server(), w.main);
  ASSERT_EQ(plan.edge_servers().size(), 1u);
}

TEST(DescriptorTest, MalformedInputThrows) {
  DescriptorWorld w;
  EXPECT_THROW((void)parse_descriptor("nonsense line without colon\n", w.topo),
               std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("[broken section\n", w.topo), std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("unknown-key: x\n", w.topo), std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("main-server: no-such-node\n", w.topo),
               std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("features: not-a-feature\n", w.topo),
               std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("query-refresh: sideways\n", w.topo),
               std::invalid_argument);
  EXPECT_THROW((void)parse_descriptor("[weird]\nk: v\n", w.topo), std::invalid_argument);
}

TEST(DescriptorTest, FeatureNameRoundTrip) {
  for (Feature f : {Feature::kRemoteFacade, Feature::kStubCaching,
                    Feature::kStatefulComponentCaching, Feature::kQueryCaching,
                    Feature::kAsyncUpdates}) {
    EXPECT_EQ(feature_from_string(to_string(f)), f);
  }
  EXPECT_EQ(refresh_from_string("pull"), QueryRefreshMode::kPull);
  EXPECT_EQ(refresh_from_string("push"), QueryRefreshMode::kPush);
}

}  // namespace
}  // namespace mutsvc::comp

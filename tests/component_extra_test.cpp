// Deeper container-runtime coverage: delta encoding, update-path transport,
// interaction profiling, transaction batching, argument handling.
#include <gtest/gtest.h>

#include "component/deployment.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::comp {
namespace {

using db::Query;
using db::Row;
using db::Value;
using net::NodeId;
using sim::Duration;
using sim::ms;
using sim::Simulator;
using sim::Task;

struct World {
  Simulator sim{7};
  net::Topology topo{sim};
  NodeId main, edge1, edge2;
  net::Network net{sim, topo, Duration::zero()};
  std::unique_ptr<net::RmiTransport> rmi;
  std::unique_ptr<db::Database> db;
  comp::Application app{"extra"};
  std::unique_ptr<Runtime> rt;

  explicit World(double extra_rtt = 0.0) {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    edge1 = topo.add_node("edge1", net::NodeRole::kAppServer);
    edge2 = topo.add_node("edge2", net::NodeRole::kAppServer);
    topo.add_link(main, edge1, ms(100), 100e6);
    topo.add_link(main, edge2, ms(100), 100e6);
    net::RmiConfig rcfg;
    rcfg.extra_rtt_prob = extra_rtt;
    rcfg.dgc_traffic_factor = 1.0;
    rmi = std::make_unique<net::RmiTransport>(net, rcfg);
    db = std::make_unique<db::Database>(topo, main);
    auto& items = db->create_table("item", {{"id", db::ColumnType::kInt},
                                            {"name", db::ColumnType::kText},
                                            {"price", db::ColumnType::kReal}});
    for (std::int64_t i = 0; i < 10; ++i) {
      items.insert(Row{i, std::string{"a rather long item description ..."}, 1.0});
    }

    auto& facade = app.define("Facade", comp::ComponentKind::kStatelessSessionBean);
    facade.method({.name = "get",
                   .cpu = Duration::zero(),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto row = co_await ctx.read_entity("Item", ctx.arg_int(0));
                     if (row) ctx.result.push_back(*row);
                   }});
    facade.method({.name = "touchTwo",
                   .cpu = Duration::zero(),
                   .body = [](CallContext& ctx) -> Task<void> {
                     // Two writes in one method = one transaction = one
                     // bulk push per edge.
                     co_await ctx.write_entity("Item", 1, "price", 2.0);
                     co_await ctx.write_entity("Item", 2, "price", 2.0);
                   }});
  }

  Runtime& start(DeploymentPlan plan, RuntimeConfig cfg = {}) {
    cfg.local_dispatch = cfg.entity_access = cfg.cache_access = Duration::zero();
    cfg.apply_update = cfg.mdb_dispatch = cfg.jms_accept = Duration::zero();
    rt = std::make_unique<Runtime>(sim, topo, net, *rmi, *db, app, std::move(plan), cfg);
    rt->bind_entity("Item", "item");
    return *rt;
  }

  DeploymentPlan caching_plan() {
    DeploymentPlan plan;
    plan.set_main_server(main);
    plan.add_edge_server(edge1);
    plan.add_edge_server(edge2);
    plan.place("Facade", main);
    plan.place("Facade", edge1);
    plan.place("Facade", edge2);
    plan.enable(Feature::kStatefulComponentCaching);
    plan.enable(Feature::kStubCaching);
    plan.replicate_read_only("Item", edge1);
    plan.replicate_read_only("Item", edge2);
    return plan;
  }

  void drain(Task<void> t) {
    sim.spawn(std::move(t));
    sim.run_until();
  }
};

TEST(RuntimeExtraTest, DeltaEncodingShrinksPushTraffic) {
  auto push_bytes = [](bool delta) {
    World w;
    RuntimeConfig cfg;
    cfg.delta_encoding = delta;
    Runtime& rt = w.start(w.caching_plan(), cfg);
    w.net.reset_counters();
    w.drain([](Runtime& rt, World& w) -> Task<void> {
      (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {});
    }(rt, w));
    return w.net.wan_bytes_sent();
  };
  const auto full = push_bytes(false);
  const auto delta = push_bytes(true);
  EXPECT_GT(full, 0);
  // §4.3: "transferring only the changes instead of the entire bean's
  // state" must reduce wide-area bytes.
  EXPECT_LT(delta, full);
}

TEST(RuntimeExtraTest, OneTransactionMeansOnePushPerEdge) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {});
  }(rt, w));
  // Two entity writes, but exactly one bulk call per edge (§4.4).
  EXPECT_EQ(rt.blocking_pushes(), 2u);
}

TEST(RuntimeExtraTest, PushPathSkipsRmiExtraRoundTrips) {
  // Even with a flaky base RMI (always one extra RTT), the dedicated
  // updater transport pays exactly one round trip per push: the write
  // completes at 2 x 200ms, deterministically.
  World w{/*extra_rtt=*/1.0};
  Runtime& rt = w.start(w.caching_plan());
  sim::SimTime done;
  w.drain([](Runtime& rt, World& w, sim::SimTime& done) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {});
    done = w.sim.now();
  }(rt, w, done));
  EXPECT_NEAR(done.as_millis(), 400.0, 5.0);  // + per-hop router overheads
  EXPECT_EQ(rt.rmi().extra_round_trips(), 0u);  // base transport unused here
}

TEST(RuntimeExtraTest, InteractionProfileRecordsCallsAndWrites) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "get", std::int64_t{3});
    (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {});
  }(rt, w));

  const auto& profile = rt.interaction_profile();
  const auto client_edge = profile.find({"__client__", "Facade"});
  ASSERT_NE(client_edge, profile.end());
  EXPECT_EQ(client_edge->second.calls, 2u);

  const auto entity_edge = profile.find({"Facade", "Item"});
  ASSERT_NE(entity_edge, profile.end());
  EXPECT_EQ(entity_edge->second.calls, 3u);   // 1 read + 2 writes
  EXPECT_EQ(entity_edge->second.writes, 2u);

  rt.reset_interaction_profile();
  EXPECT_TRUE(rt.interaction_profile().empty());
}

TEST(RuntimeExtraTest, VariadicInvokeAcceptsMixedTypes) {
  World w;
  auto& mixer = w.app.define("Mixer", comp::ComponentKind::kStatelessSessionBean);
  mixer.method({.name = "mix",
                .cpu = Duration::zero(),
                .body = [](CallContext& ctx) -> Task<void> {
                  EXPECT_EQ(ctx.arg_int(0), 7);
                  EXPECT_DOUBLE_EQ(db::as_real(ctx.arg(1)), 2.5);
                  EXPECT_EQ(ctx.arg_text(2), "hello");
                  EXPECT_EQ(ctx.arg_count(), 3u);
                  EXPECT_THROW((void)ctx.arg(3), std::out_of_range);
                  co_return;
                }});
  DeploymentPlan plan = w.caching_plan();
  plan.place("Mixer", w.main);
  Runtime& rt = w.start(std::move(plan));
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Mixer", "mix", std::int64_t{7}, 2.5,
                             std::string{"hello"});
  }(rt, w));
}

TEST(RuntimeExtraTest, CallContextCpuConsumesHostNode) {
  World w;
  auto& burner = w.app.define("Burner", comp::ComponentKind::kStatelessSessionBean);
  burner.method({.name = "burn",
                 .cpu = Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> { co_await ctx.cpu(ms(30)); }});
  DeploymentPlan plan = w.caching_plan();
  plan.place("Burner", w.main);
  Runtime& rt = w.start(std::move(plan));
  w.topo.node(w.main).cpu->reset_utilization();
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Burner", "burn", {});
  }(rt, w));
  EXPECT_NEAR(w.sim.now().as_millis(), 30.0, 0.5);
  EXPECT_GT(w.topo.node(w.main).cpu->utilization(), 0.4);  // 1 of 2 CPUs busy
}

TEST(TraceTest, SpanSumMatchesEndToEndDuration) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  TraceSink sink;
  sim::SimTime t0 = w.sim.now();
  sim::SimTime done;
  w.drain([](Runtime& rt, World& w, TraceSink& sink, sim::SimTime& done) -> Task<void> {
    // Remote read with a cold replica: cache miss -> pull RMI + JDBC.
    std::vector<db::Value> args{db::Value{std::int64_t{3}}};
    (void)co_await rt.invoke(w.edge1, "Facade", "get", std::move(args), &sink);
    done = w.sim.now();
  }(rt, w, sink, done));
  const double total = (done - t0).as_millis();
  EXPECT_GT(total, 190.0);  // one WAN round trip
  // The decomposition accounts for exactly all of the elapsed time: the
  // categories are exclusive and additive by construction.
  EXPECT_EQ(sink.sum(), done - t0);
  EXPECT_GT(sink.total(SpanKind::kRmiWire).as_millis(), 150.0);
  EXPECT_GT(sink.total(SpanKind::kJdbc).count_micros(), 0);
}

TEST(TraceTest, WarmReplicaReadIsCacheOnly) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.edge1, "Facade", "get", std::int64_t{3});  // warm
  }(rt, w));
  TraceSink sink;
  w.drain([](Runtime& rt, World& w, TraceSink& sink) -> Task<void> {
    std::vector<db::Value> args{db::Value{std::int64_t{3}}};
    (void)co_await rt.invoke(w.edge1, "Facade", "get", std::move(args), &sink);
  }(rt, w, sink));
  EXPECT_EQ(sink.total(SpanKind::kRmiWire), sim::Duration::zero());
  EXPECT_EQ(sink.total(SpanKind::kJdbc), sim::Duration::zero());
}

TEST(TraceTest, BlockingWriteShowsPushTime) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  TraceSink sink;
  w.drain([](Runtime& rt, World& w, TraceSink& sink) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {}, &sink);
  }(rt, w, sink));
  // Two sequential edge pushes ~= 400 ms in the push category.
  EXPECT_NEAR(sink.total(SpanKind::kPush).as_millis(), 400.0, 5.0);
  EXPECT_GT(sink.total(SpanKind::kJdbc).count_micros(), 0);
}

TEST(TraceTest, NullSinkMeansNoTracing) {
  World w;
  Runtime& rt = w.start(w.caching_plan());
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Facade", "touchTwo", {});
  }(rt, w));
  SUCCEED();  // nothing to observe — it must simply not crash or slow down
}

TEST(TraceTest, SinkClearResets) {
  TraceSink sink;
  sink.add(SpanKind::kCpu, ms(5));
  sink.add(SpanKind::kCpu, ms(3));
  EXPECT_EQ(sink.total(SpanKind::kCpu), ms(8));
  EXPECT_EQ(sink.sum(), ms(8));
  sink.clear();
  EXPECT_EQ(sink.sum(), sim::Duration::zero());
}

TEST(RuntimeExtraTest, QueryClassNamesUseAggregateOrTable) {
  World w;
  auto& q = w.app.define("Q", comp::ComponentKind::kStatelessSessionBean);
  q.method({.name = "both",
            .cpu = Duration::zero(),
            .body = [](CallContext& ctx) -> Task<void> {
              (void)co_await ctx.cached_query(Query::finder("item", "id", std::int64_t{1}));
              co_return;
            }});
  DeploymentPlan plan = w.caching_plan();
  plan.place("Q", w.main);
  Runtime& rt = w.start(std::move(plan));
  w.drain([](Runtime& rt, World& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Q", "both", {});
  }(rt, w));
  EXPECT_TRUE(rt.interaction_profile().contains({"Q", "query:item"}));
}

}  // namespace
}  // namespace mutsvc::comp

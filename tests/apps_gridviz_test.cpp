#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/gridviz/gridviz.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::apps::gridviz {
namespace {

using comp::ComponentKind;

struct Fixture {
  GridVizApp app;
  sim::Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId dbnode = topo.add_node("db", net::NodeRole::kDatabaseServer);
  db::Database db{topo, dbnode};

  Fixture() { app.install_database(db); }
};

TEST(GridVizAppTest, Section6ArchitecturePresent) {
  GridVizApp app;
  const auto& a = app.application();
  // §6: client-side visualization, server-side processing, back-end
  // repository of structured data.
  EXPECT_EQ(a.component("VizWeb").kind(), ComponentKind::kServlet);
  EXPECT_EQ(a.component("SB_FrameServer").kind(), ComponentKind::kStatelessSessionBean);
  EXPECT_EQ(a.component("SB_Steering").kind(), ComponentKind::kStatelessSessionBean);
  EXPECT_EQ(a.component("SessionState").kind(), ComponentKind::kStatefulSessionBean);
  for (const char* e : {"DatasetEJB", "FrameEJB", "ProbeEJB", "ReadingEJB"}) {
    EXPECT_TRUE(a.component(e).is_local_only()) << e;
  }
}

TEST(GridVizAppTest, MetadataKeepsWritersCentral) {
  GridVizApp app;
  const AppMetadata& m = app.metadata();
  ASSERT_EQ(m.main_facades.size(), 1u);
  EXPECT_EQ(m.main_facades[0], "SB_Steering");
  EXPECT_EQ(std::set<std::string>(m.read_mostly.begin(), m.read_mostly.end()),
            (std::set<std::string>{"Dataset", "Frame", "Probe"}));
  // Readings are append-only live data: no read-only replicas; dashboards
  // are covered by the pushed query cache instead.
  for (const auto& e : m.read_mostly) EXPECT_NE(e, "Reading");
}

TEST(GridVizAppTest, RepositoryPopulation) {
  Fixture f;
  const Shape& s = f.app.shape();
  EXPECT_EQ(f.db.table("datasets").row_count(), static_cast<std::size_t>(s.datasets));
  EXPECT_EQ(f.db.table("frames").row_count(),
            static_cast<std::size_t>(s.datasets * s.frames_per_dataset));
  EXPECT_EQ(f.db.table("probes").row_count(),
            static_cast<std::size_t>(s.datasets * s.probes_per_dataset));
  EXPECT_EQ(f.db.table("readings").row_count(),
            static_cast<std::size_t>(s.datasets * s.probes_per_dataset *
                                     s.initial_readings_per_probe));
}

TEST(GridVizAppTest, RecentReadingsAggregateBoundedWindow) {
  Fixture f;
  auto res =
      f.db.execute_immediate(db::Query::aggregate("recent_readings", {std::int64_t{3}}));
  // 4 probes x min(20, 10) readings.
  EXPECT_EQ(res.rows.size(), 40u);
  for (const auto& r : res.rows) {
    auto probe = f.db.table("probes").get(db::as_int(r[1]));
    ASSERT_TRUE(probe.has_value());
    EXPECT_EQ(db::as_int((*probe)[1]), 3);
  }
}

TEST(GridVizSessionTest, AnalystScrubsForwardWithinOneDataset) {
  GridVizApp app;
  const Shape& s = app.shape();
  auto factory = app.analyst_factory(sim::RngStream{3});
  for (int i = 0; i < 20; ++i) {
    auto session = factory();
    std::int64_t dataset = 0;
    int count = 0;
    while (auto req = session->next()) {
      ++count;
      EXPECT_EQ(req->pattern, "Analyst");
      if (req->page == "Dataset") dataset = db::as_int(req->args.at(0));
      if (req->page == "Frame" && dataset != 0) {
        const std::int64_t frame = db::as_int(req->args.at(0));
        EXPECT_EQ(frame / 1000, dataset);  // frame belongs to the open run
        EXPECT_LE(frame % 1000, static_cast<std::int64_t>(s.frames_per_dataset));
      }
      if (req->page == "Frame") {
        EXPECT_EQ(req->response_bytes, 48 * 1024);  // tile payload
      }
    }
    EXPECT_EQ(count, GridVizApp::kAnalystSessionLength);
  }
}

TEST(GridVizSessionTest, OperatorSteersTheProbesDataset) {
  GridVizApp app;
  auto factory = app.operator_factory(sim::RngStream{5});
  auto session = factory();
  std::vector<std::string> pages;
  std::int64_t steered_dataset = 0;
  std::int64_t probe = 0;
  while (auto req = session->next()) {
    pages.push_back(req->page);
    if (req->page == "Steer") steered_dataset = db::as_int(req->args.at(0));
    if (req->page == "Append") probe = db::as_int(req->args.at(0));
  }
  EXPECT_EQ(pages, (std::vector<std::string>{"Auth", "Steer", "Append", "Dashboard", "Append",
                                             "Dashboard"}));
  EXPECT_EQ(probe / 100, steered_dataset);  // probes belong to the steered run
}

TEST(GridVizExperimentTest, LadderShapesHold) {
  GridVizApp app;
  core::HarnessCalibration cal;
  cal.testbed.db_colocated = true;

  auto run = [&](core::ConfigLevel level) {
    core::ExperimentSpec spec;
    spec.level = level;
    spec.duration = sim::sec(500);
    spec.warmup = sim::sec(100);
    auto exp = std::make_unique<core::Experiment>(app.driver(), spec, cal);
    exp->run();
    return exp;
  };

  auto centralized = run(core::ConfigLevel::kCentralized);
  auto final_cfg = run(core::ConfigLevel::kAsyncUpdates);

  using stats::ClientGroup;
  // Analysts: centralized remote pays the WAN; final configuration is
  // near-local.
  const double c_remote = centralized->results().pattern_mean_ms("Analyst", ClientGroup::kRemote);
  const double f_remote = final_cfg->results().pattern_mean_ms("Analyst", ClientGroup::kRemote);
  EXPECT_GT(c_remote, 380.0);
  EXPECT_LT(f_remote, 100.0);

  // Frame tiles stop crossing the WAN: traffic drops by an order of
  // magnitude (the data-distillation effect of edge replicas).
  EXPECT_LT(final_cfg->network().wan_bytes_sent() * 10,
            centralized->network().wan_bytes_sent());

  // Zero staleness would hold under blocking push; async trades it away but
  // replicas converge (quiescent at end of run).
  EXPECT_TRUE(final_cfg->runtime().updates_quiescent());
}

TEST(GridVizAppTest, DriverComplete) {
  GridVizApp app;
  AppDriver d = app.driver();
  EXPECT_EQ(d.browser_pattern, "Analyst");
  EXPECT_EQ(d.writer_pattern, "Operator");
  EXPECT_TRUE(d.db_colocated);
  EXPECT_EQ(d.table_pages.size(), 8u);
}

}  // namespace
}  // namespace mutsvc::apps::gridviz

// End-to-end overload-protection battery (ISSUE 6): admission control,
// bounded queues, WAN shaping and backpressure wired through the full
// experiment harness. Asserts the conservation identities
//   pages_started == requests_admitted + rejected_admission
//   issued == samples + failures + rejections + discarded + in_flight
// across the config ladder × overflow policies × fault plans, that kBounce
// rides the page-retry machinery, that a disabled (and a merely-enabled)
// flow config leaves the trajectory bit-identical, and that flow-enabled
// runs are deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "net/flowcontrol.hpp"
#include "sim/simulator.hpp"

namespace mutsvc {
namespace {

using core::ConfigLevel;
using core::Experiment;
using core::ExperimentSpec;
using net::OverflowPolicy;

// Bounced queue overflows must ride the existing transient-failure paths.
static_assert(std::is_base_of_v<net::NetError, net::OverloadError>,
              "OverloadError must be retryable as a NetError");

void assert_conservation(Experiment& exp, const std::string& tag) {
  const auto& r = exp.results();
  EXPECT_EQ(exp.pages_started(), exp.requests_admitted() + exp.rejected_admission()) << tag;
  // End-of-run rule: requests count at issue time, and a truncated run
  // leaves the tail permanently in flight — every issued request is either
  // recorded (sample/failure/rejection/warm-up discard) or still in flight.
  EXPECT_EQ(exp.requests_issued(), r.total_samples() + r.failures() + r.rejections() +
                                       r.discarded_samples() + exp.requests_in_flight())
      << tag << ": issued=" << exp.requests_issued() << " samples=" << r.total_samples()
      << " failures=" << r.failures() << " rejections=" << r.rejections()
      << " discarded=" << r.discarded_samples()
      << " in_flight=" << exp.requests_in_flight();
  // Drivers count issued the instant they hand the page to execute(), and
  // execute() counts admitted/rejected before its first suspension.
  EXPECT_EQ(exp.requests_issued(), exp.pages_started()) << tag;
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionTest, TokenBucketRejectsExcessLoadExactly) {
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(20);
  spec.total_request_rate = 30.0;  // 10/s per entry node
  spec.open_loop_arrivals = true;
  spec.flow.enabled = true;
  spec.flow.admission_rate = 4.0;  // well under the offered 10/s per entry
  spec.flow.admission_burst = 5.0;
  Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  EXPECT_GT(exp.rejected_admission(), 0u);
  EXPECT_GT(exp.requests_admitted(), 0u);
  EXPECT_GT(exp.results().rejections(), 0u) << "rejections must reach the collector";
  assert_conservation(exp, "admission");
  // The bucket cannot admit more than rate * duration + burst per entry
  // node (3 entry nodes).
  const double cap = 3.0 * (4.0 * spec.duration.as_seconds() + 5.0);
  EXPECT_LE(static_cast<double>(exp.requests_admitted()), cap);
}

TEST(AdmissionTest, UnderOfferedLoadNothingIsRejected) {
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(90);
  spec.warmup = sim::sec(15);
  spec.total_request_rate = 12.0;  // 4/s per entry node
  spec.flow.enabled = true;
  spec.flow.admission_rate = 50.0;  // far above the offer
  Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();
  EXPECT_EQ(exp.rejected_admission(), 0u);
  EXPECT_EQ(exp.results().rejections(), 0u);
  assert_conservation(exp, "under-load");
}

// --- Zero-diff when disabled -------------------------------------------------

struct RunDigest {
  std::uint64_t issued, samples, failures, rejections, discarded, dropped;
  double local_mean, remote_mean;
  bool operator==(const RunDigest&) const = default;
};

RunDigest run_digest(const ExperimentSpec& spec) {
  apps::petstore::PetStoreApp app;
  Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();
  const auto& r = exp.results();
  return RunDigest{exp.requests_issued(),
                   r.total_samples(),
                   r.failures(),
                   r.rejections(),
                   r.discarded_samples(),
                   exp.dropped_requests(),
                   r.pattern_mean_ms("Browser", stats::ClientGroup::kLocal),
                   r.pattern_mean_ms("Browser", stats::ClientGroup::kRemote)};
}

TEST(ZeroDiffTest, EnabledButUnconfiguredFlowIsByteIdenticalToDisabled) {
  // `enabled = true` with every knob at its default (no admission rate, no
  // bounds, no WAN limit) must not perturb the trajectory at all: every
  // flow-control branch is dead, credit gates never close, and the only
  // code that runs is capacity==0 checks.
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(20);
  spec.seed = 1234;
  const RunDigest off = run_digest(spec);
  spec.flow.enabled = true;
  const RunDigest on = run_digest(spec);
  EXPECT_EQ(off.issued, on.issued);
  EXPECT_EQ(off.samples, on.samples);
  EXPECT_EQ(off.dropped, on.dropped);
  // Exact double equality: identical trajectories produce identical sums.
  EXPECT_EQ(off.local_mean, on.local_mean);
  EXPECT_EQ(off.remote_mean, on.remote_mean);
  EXPECT_TRUE(off == on);
}

TEST(ZeroDiffTest, FlowEnabledRunIsDeterministic) {
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(100);
  spec.warmup = sim::sec(20);
  spec.seed = 99;
  spec.open_loop_arrivals = true;
  spec.total_request_rate = 45.0;
  spec.flow.enabled = true;
  spec.flow.admission_rate = 8.0;
  spec.flow.topic_queue.capacity = 8;
  spec.flow.topic_queue.policy = OverflowPolicy::kLocalOverflow;
  spec.flow.wan_rate_bps = 2e6;
  const RunDigest a = run_digest(spec);
  const RunDigest b = run_digest(spec);
  EXPECT_TRUE(a == b) << "same spec, same seed -> bit-identical results";
}

// --- Bounded queues × policies × faults across the ladder --------------------

struct OverloadCase {
  const char* name;
  ConfigLevel level;
  OverflowPolicy policy;
  double loss_prob;  // stochastic message loss (PR 2 fault machinery)
};

const OverloadCase kCases[] = {
    {"facade_drop", ConfigLevel::kRemoteFacade, OverflowPolicy::kDrop, 0.0},
    {"async_drop_lossy", ConfigLevel::kAsyncUpdates, OverflowPolicy::kDrop, 0.01},
    {"async_bounce", ConfigLevel::kAsyncUpdates, OverflowPolicy::kBounce, 0.0},
    {"async_spill_lossy", ConfigLevel::kAsyncUpdates, OverflowPolicy::kLocalOverflow, 0.01},
};

class OverloadLadder : public ::testing::TestWithParam<OverloadCase> {};

TEST_P(OverloadLadder, ConservationHoldsUnderPressureAndFaults) {
  const OverloadCase& c = GetParam();
  apps::rubis::RubisApp app;  // heavier write mix stresses the update path
  ExperimentSpec spec;
  spec.level = c.level;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(20);
  spec.seed = 4242;
  spec.open_loop_arrivals = true;
  spec.total_request_rate = 60.0;  // ~2x the calibrated capacity
  spec.flow.enabled = true;
  spec.flow.admission_rate = 12.0;
  spec.flow.topic_queue.capacity = 4;
  spec.flow.topic_queue.policy = c.policy;
  spec.flow.write_queue.capacity = 16;
  spec.flow.write_queue.policy = OverflowPolicy::kDrop;
  if (c.loss_prob > 0.0) {
    spec.fault_plan.loss_prob = c.loss_prob;
    spec.resilience.enabled = true;
    spec.resilience.http_retries = 2;
  }
  Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();

  assert_conservation(exp, c.name);
  EXPECT_GT(exp.rejected_admission(), 0u) << c.name << ": 2x overload must trip admission";

  // Per-topic conservation: every fan-out copy is delivered, shed, or
  // still pending at the cut-off — by construction and by counter.
  comp::Runtime& rt = exp.runtime();
  std::uint64_t expected = 0, delivered = 0, shed = 0, pending = 0;
  for (std::size_t s = 0; s < rt.update_topic_count(); ++s) {
    auto* t = rt.update_topic(s);
    expected += t->expected_deliveries();
    delivered += t->delivered();
    shed += t->shed();
    pending += t->pending();
    EXPECT_EQ(t->publish_attempts(), t->published() + t->bounced()) << c.name;
  }
  EXPECT_EQ(expected, delivered + shed + pending) << c.name;
  if (c.policy == OverflowPolicy::kBounce) {
    EXPECT_EQ(rt.topic_shed(), 0u) << "bounce never sheds accepted messages";
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, OverloadLadder, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<OverloadCase>& info) {
                           return std::string{info.param.name};
                         });

// --- kBounce consumes the page-retry budget ----------------------------------

TEST(BouncePolicyTest, BouncedPublishesConsumeWholePageRetries) {
  // Tiny topic capacity under heavy writes: publishes bounce out of the
  // façade as OverloadError, which the client treats like any transient
  // network fault — bounded whole-page retries, then a recorded failure.
  // The run must terminate (bounded retries) and conserve every request.
  apps::rubis::RubisApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(20);
  spec.seed = 77;
  spec.open_loop_arrivals = true;
  // Heavy enough that the capacity-1 queue is full across a whole page's
  // retry schedule (RMI-level retries cushion each attempt, so a marginal
  // overload lets every page through eventually).
  spec.total_request_rate = 240.0;
  spec.resilience.enabled = true;  // grants http_retries whole-page retries
  spec.resilience.http_retries = 2;
  spec.flow.enabled = true;
  spec.flow.topic_queue.capacity = 1;
  spec.flow.topic_queue.policy = OverflowPolicy::kBounce;
  // Backpressure would park writers at the credit gate before they ever see
  // a full queue; turn it off so the bounce policy itself is exercised.
  spec.flow.backpressure = false;
  Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();

  assert_conservation(exp, "bounce-retries");
  EXPECT_GT(exp.runtime().topic_bounced(), 0u) << "capacity 1 must bounce under 2x load";
  // Some pages exhausted their retry budget on repeated bounces.
  EXPECT_GT(exp.dropped_requests(), 0u);
  EXPECT_GT(exp.results().failures(), 0u);
}

// --- WAN rate limiting -------------------------------------------------------

TEST(WanRateLimitTest, ShapingThrottlesWanTrafficAndSlowsRemotes) {
  apps::petstore::PetStoreApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kCentralized;  // remote pages cross the WAN
  spec.duration = sim::sec(100);
  spec.warmup = sim::sec(20);
  spec.seed = 5;

  Experiment free{app.driver(), spec, core::petstore_calibration()};
  free.run();
  EXPECT_EQ(free.network().wan_throttled(), 0u) << "no limit installed";
  const double free_remote =
      free.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);

  spec.flow.enabled = true;
  spec.flow.wan_rate_bps = 256e3;  // 256 kbit/s chokes the page bodies
  spec.flow.wan_burst_bytes = 4 * 1024;
  Experiment shaped{app.driver(), spec, core::petstore_calibration()};
  shaped.run();
  EXPECT_GT(shaped.network().wan_throttled(), 0u);
  EXPECT_GT(shaped.network().wan_throttle_time(), sim::Duration::zero());
  const double shaped_remote =
      shaped.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  EXPECT_GT(shaped_remote, free_remote) << "shaped WAN must slow remote pages";
  assert_conservation(shaped, "wan-shaped");
}

// --- Backpressure ------------------------------------------------------------

TEST(BackpressureTest, CreditGatesEngageUnderUpdatePressure) {
  apps::rubis::RubisApp app;
  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(120);
  spec.warmup = sim::sec(20);
  spec.seed = 11;
  spec.open_loop_arrivals = true;
  spec.total_request_rate = 60.0;
  spec.flow.enabled = true;
  spec.flow.backpressure = true;
  spec.flow.topic_queue.capacity = 2;
  spec.flow.topic_queue.policy = OverflowPolicy::kLocalOverflow;
  Experiment exp{app.driver(), spec, core::rubis_calibration()};
  exp.run();

  assert_conservation(exp, "backpressure");
  // Under 2x load with capacity 2 the protection must engage somewhere:
  // writers stall on credit, or arrivals divert into spill.
  const std::uint64_t engaged =
      exp.runtime().credit_stalls() + exp.runtime().topic_spilled();
  EXPECT_GT(engaged, 0u);
  // Spill + backpressure never terminally shed with an unbounded spill.
  EXPECT_EQ(exp.runtime().topic_shed(), 0u);
}

}  // namespace
}  // namespace mutsvc

file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_run.dir/mutsvc_run.cpp.o"
  "CMakeFiles/mutsvc_run.dir/mutsvc_run.cpp.o.d"
  "mutsvc_run"
  "mutsvc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mutsvc_run.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/design_rules.cpp" "src/core/CMakeFiles/mutsvc_core.dir/design_rules.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/design_rules.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/mutsvc_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/placement/advisor.cpp" "src/core/CMakeFiles/mutsvc_core.dir/placement/advisor.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/placement/advisor.cpp.o.d"
  "/root/repo/src/core/placement/algorithms.cpp" "src/core/CMakeFiles/mutsvc_core.dir/placement/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/placement/algorithms.cpp.o.d"
  "/root/repo/src/core/placement/graph.cpp" "src/core/CMakeFiles/mutsvc_core.dir/placement/graph.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/placement/graph.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/core/CMakeFiles/mutsvc_core.dir/testbed.cpp.o" "gcc" "src/core/CMakeFiles/mutsvc_core.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/component/CMakeFiles/mutsvc_component.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mutsvc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mutsvc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mutsvc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mutsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mutsvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

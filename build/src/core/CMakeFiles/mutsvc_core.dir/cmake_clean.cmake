file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_core.dir/design_rules.cpp.o"
  "CMakeFiles/mutsvc_core.dir/design_rules.cpp.o.d"
  "CMakeFiles/mutsvc_core.dir/experiment.cpp.o"
  "CMakeFiles/mutsvc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mutsvc_core.dir/placement/advisor.cpp.o"
  "CMakeFiles/mutsvc_core.dir/placement/advisor.cpp.o.d"
  "CMakeFiles/mutsvc_core.dir/placement/algorithms.cpp.o"
  "CMakeFiles/mutsvc_core.dir/placement/algorithms.cpp.o.d"
  "CMakeFiles/mutsvc_core.dir/placement/graph.cpp.o"
  "CMakeFiles/mutsvc_core.dir/placement/graph.cpp.o.d"
  "CMakeFiles/mutsvc_core.dir/testbed.cpp.o"
  "CMakeFiles/mutsvc_core.dir/testbed.cpp.o.d"
  "libmutsvc_core.a"
  "libmutsvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmutsvc_core.a"
)

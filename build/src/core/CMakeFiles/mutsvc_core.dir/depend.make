# Empty dependencies file for mutsvc_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmutsvc_net.a"
)

# Empty compiler generated dependencies file for mutsvc_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_net.dir/http.cpp.o"
  "CMakeFiles/mutsvc_net.dir/http.cpp.o.d"
  "CMakeFiles/mutsvc_net.dir/network.cpp.o"
  "CMakeFiles/mutsvc_net.dir/network.cpp.o.d"
  "CMakeFiles/mutsvc_net.dir/rmi.cpp.o"
  "CMakeFiles/mutsvc_net.dir/rmi.cpp.o.d"
  "CMakeFiles/mutsvc_net.dir/topology.cpp.o"
  "CMakeFiles/mutsvc_net.dir/topology.cpp.o.d"
  "libmutsvc_net.a"
  "libmutsvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

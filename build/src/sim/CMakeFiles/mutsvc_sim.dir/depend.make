# Empty dependencies file for mutsvc_sim.
# This may be replaced when dependencies are built.

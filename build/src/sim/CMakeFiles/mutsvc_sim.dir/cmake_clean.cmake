file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_sim.dir/simulator.cpp.o"
  "CMakeFiles/mutsvc_sim.dir/simulator.cpp.o.d"
  "libmutsvc_sim.a"
  "libmutsvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

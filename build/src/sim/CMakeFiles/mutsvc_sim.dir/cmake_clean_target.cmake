file(REMOVE_RECURSE
  "libmutsvc_sim.a"
)

# Empty compiler generated dependencies file for mutsvc_component.
# This may be replaced when dependencies are built.

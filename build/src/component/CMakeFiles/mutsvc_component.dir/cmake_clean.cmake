file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_component.dir/deployment.cpp.o"
  "CMakeFiles/mutsvc_component.dir/deployment.cpp.o.d"
  "CMakeFiles/mutsvc_component.dir/descriptor.cpp.o"
  "CMakeFiles/mutsvc_component.dir/descriptor.cpp.o.d"
  "CMakeFiles/mutsvc_component.dir/runtime.cpp.o"
  "CMakeFiles/mutsvc_component.dir/runtime.cpp.o.d"
  "libmutsvc_component.a"
  "libmutsvc_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmutsvc_component.a"
)

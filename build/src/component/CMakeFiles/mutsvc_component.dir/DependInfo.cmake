
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/component/deployment.cpp" "src/component/CMakeFiles/mutsvc_component.dir/deployment.cpp.o" "gcc" "src/component/CMakeFiles/mutsvc_component.dir/deployment.cpp.o.d"
  "/root/repo/src/component/descriptor.cpp" "src/component/CMakeFiles/mutsvc_component.dir/descriptor.cpp.o" "gcc" "src/component/CMakeFiles/mutsvc_component.dir/descriptor.cpp.o.d"
  "/root/repo/src/component/runtime.cpp" "src/component/CMakeFiles/mutsvc_component.dir/runtime.cpp.o" "gcc" "src/component/CMakeFiles/mutsvc_component.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mutsvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mutsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mutsvc_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

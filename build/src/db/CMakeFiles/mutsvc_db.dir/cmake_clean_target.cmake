file(REMOVE_RECURSE
  "libmutsvc_db.a"
)

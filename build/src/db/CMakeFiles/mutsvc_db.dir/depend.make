# Empty dependencies file for mutsvc_db.
# This may be replaced when dependencies are built.

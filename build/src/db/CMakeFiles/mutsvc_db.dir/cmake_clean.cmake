file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_db.dir/database.cpp.o"
  "CMakeFiles/mutsvc_db.dir/database.cpp.o.d"
  "CMakeFiles/mutsvc_db.dir/jdbc.cpp.o"
  "CMakeFiles/mutsvc_db.dir/jdbc.cpp.o.d"
  "CMakeFiles/mutsvc_db.dir/table.cpp.o"
  "CMakeFiles/mutsvc_db.dir/table.cpp.o.d"
  "libmutsvc_db.a"
  "libmutsvc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

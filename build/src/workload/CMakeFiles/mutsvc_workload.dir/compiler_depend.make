# Empty compiler generated dependencies file for mutsvc_workload.
# This may be replaced when dependencies are built.

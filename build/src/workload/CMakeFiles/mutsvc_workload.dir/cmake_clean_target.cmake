file(REMOVE_RECURSE
  "libmutsvc_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_workload.dir/loadgen.cpp.o"
  "CMakeFiles/mutsvc_workload.dir/loadgen.cpp.o.d"
  "libmutsvc_workload.a"
  "libmutsvc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

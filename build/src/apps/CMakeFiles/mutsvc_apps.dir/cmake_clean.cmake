file(REMOVE_RECURSE
  "CMakeFiles/mutsvc_apps.dir/gridviz/gridviz.cpp.o"
  "CMakeFiles/mutsvc_apps.dir/gridviz/gridviz.cpp.o.d"
  "CMakeFiles/mutsvc_apps.dir/petstore/petstore.cpp.o"
  "CMakeFiles/mutsvc_apps.dir/petstore/petstore.cpp.o.d"
  "CMakeFiles/mutsvc_apps.dir/rubis/rubis.cpp.o"
  "CMakeFiles/mutsvc_apps.dir/rubis/rubis.cpp.o.d"
  "libmutsvc_apps.a"
  "libmutsvc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutsvc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

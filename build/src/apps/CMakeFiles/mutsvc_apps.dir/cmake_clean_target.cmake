file(REMOVE_RECURSE
  "libmutsvc_apps.a"
)

# Empty dependencies file for mutsvc_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_rubis.dir/bench_table7_rubis.cpp.o"
  "CMakeFiles/bench_table7_rubis.dir/bench_table7_rubis.cpp.o.d"
  "bench_table7_rubis"
  "bench_table7_rubis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_rubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

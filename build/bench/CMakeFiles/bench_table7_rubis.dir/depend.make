# Empty dependencies file for bench_table7_rubis.
# This may be replaced when dependencies are built.

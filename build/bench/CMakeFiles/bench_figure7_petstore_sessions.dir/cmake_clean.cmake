file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_petstore_sessions.dir/bench_figure7_petstore_sessions.cpp.o"
  "CMakeFiles/bench_figure7_petstore_sessions.dir/bench_figure7_petstore_sessions.cpp.o.d"
  "bench_figure7_petstore_sessions"
  "bench_figure7_petstore_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_petstore_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_figure7_petstore_sessions.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tail_latency.cpp" "bench/CMakeFiles/bench_tail_latency.dir/bench_tail_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_tail_latency.dir/bench_tail_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mutsvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mutsvc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/mutsvc_component.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mutsvc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mutsvc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mutsvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mutsvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_scaling.dir/bench_ablation_async_scaling.cpp.o"
  "CMakeFiles/bench_ablation_async_scaling.dir/bench_ablation_async_scaling.cpp.o.d"
  "bench_ablation_async_scaling"
  "bench_ablation_async_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_availability.dir/bench_ablation_availability.cpp.o"
  "CMakeFiles/bench_ablation_availability.dir/bench_ablation_availability.cpp.o.d"
  "bench_ablation_availability"
  "bench_ablation_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_figure8_rubis_sessions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_rubis_sessions.dir/bench_figure8_rubis_sessions.cpp.o"
  "CMakeFiles/bench_figure8_rubis_sessions.dir/bench_figure8_rubis_sessions.cpp.o.d"
  "bench_figure8_rubis_sessions"
  "bench_figure8_rubis_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_rubis_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_gridviz.dir/bench_gridviz.cpp.o"
  "CMakeFiles/bench_gridviz.dir/bench_gridviz.cpp.o.d"
  "bench_gridviz"
  "bench_gridviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gridviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

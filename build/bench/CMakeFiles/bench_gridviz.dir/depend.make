# Empty dependencies file for bench_gridviz.
# This may be replaced when dependencies are built.

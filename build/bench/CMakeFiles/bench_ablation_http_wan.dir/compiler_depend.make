# Empty compiler generated dependencies file for bench_ablation_http_wan.
# This may be replaced when dependencies are built.

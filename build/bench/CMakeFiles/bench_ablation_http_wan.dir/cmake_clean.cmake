file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_http_wan.dir/bench_ablation_http_wan.cpp.o"
  "CMakeFiles/bench_ablation_http_wan.dir/bench_ablation_http_wan.cpp.o.d"
  "bench_ablation_http_wan"
  "bench_ablation_http_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_http_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table6_petstore.
# This may be replaced when dependencies are built.

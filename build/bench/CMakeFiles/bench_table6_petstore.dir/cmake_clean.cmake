file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_petstore.dir/bench_table6_petstore.cpp.o"
  "CMakeFiles/bench_table6_petstore.dir/bench_table6_petstore.cpp.o.d"
  "bench_table6_petstore"
  "bench_table6_petstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_petstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

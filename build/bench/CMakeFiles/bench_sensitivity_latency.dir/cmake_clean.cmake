file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_latency.dir/bench_sensitivity_latency.cpp.o"
  "CMakeFiles/bench_sensitivity_latency.dir/bench_sensitivity_latency.cpp.o.d"
  "bench_sensitivity_latency"
  "bench_sensitivity_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_sensitivity_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_edges.dir/bench_scaling_edges.cpp.o"
  "CMakeFiles/bench_scaling_edges.dir/bench_scaling_edges.cpp.o.d"
  "bench_scaling_edges"
  "bench_scaling_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

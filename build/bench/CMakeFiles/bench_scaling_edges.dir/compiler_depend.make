# Empty compiler generated dependencies file for bench_scaling_edges.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_facade.dir/bench_ablation_facade.cpp.o"
  "CMakeFiles/bench_ablation_facade.dir/bench_ablation_facade.cpp.o.d"
  "bench_ablation_facade"
  "bench_ablation_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

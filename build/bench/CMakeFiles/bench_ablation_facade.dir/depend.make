# Empty dependencies file for bench_ablation_facade.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/petstore_tour.dir/petstore_tour.cpp.o"
  "CMakeFiles/petstore_tour.dir/petstore_tour.cpp.o.d"
  "petstore_tour"
  "petstore_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petstore_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

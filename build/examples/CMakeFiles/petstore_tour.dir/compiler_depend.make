# Empty compiler generated dependencies file for petstore_tour.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rubis_usage_patterns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rubis_usage_patterns.dir/rubis_usage_patterns.cpp.o"
  "CMakeFiles/rubis_usage_patterns.dir/rubis_usage_patterns.cpp.o.d"
  "rubis_usage_patterns"
  "rubis_usage_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_usage_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

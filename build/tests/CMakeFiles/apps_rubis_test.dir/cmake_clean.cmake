file(REMOVE_RECURSE
  "CMakeFiles/apps_rubis_test.dir/apps_rubis_test.cpp.o"
  "CMakeFiles/apps_rubis_test.dir/apps_rubis_test.cpp.o.d"
  "apps_rubis_test"
  "apps_rubis_test.pdb"
  "apps_rubis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_rubis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

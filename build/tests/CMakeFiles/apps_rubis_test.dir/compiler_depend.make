# Empty compiler generated dependencies file for apps_rubis_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/net_extra_test.dir/net_extra_test.cpp.o"
  "CMakeFiles/net_extra_test.dir/net_extra_test.cpp.o.d"
  "net_extra_test"
  "net_extra_test.pdb"
  "net_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for net_extra_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for component_extra_test.
# This may be replaced when dependencies are built.

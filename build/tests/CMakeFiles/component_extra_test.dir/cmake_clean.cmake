file(REMOVE_RECURSE
  "CMakeFiles/component_extra_test.dir/component_extra_test.cpp.o"
  "CMakeFiles/component_extra_test.dir/component_extra_test.cpp.o.d"
  "component_extra_test"
  "component_extra_test.pdb"
  "component_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

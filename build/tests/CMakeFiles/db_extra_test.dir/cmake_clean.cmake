file(REMOVE_RECURSE
  "CMakeFiles/db_extra_test.dir/db_extra_test.cpp.o"
  "CMakeFiles/db_extra_test.dir/db_extra_test.cpp.o.d"
  "db_extra_test"
  "db_extra_test.pdb"
  "db_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for db_extra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/apps_petstore_test.dir/apps_petstore_test.cpp.o"
  "CMakeFiles/apps_petstore_test.dir/apps_petstore_test.cpp.o.d"
  "apps_petstore_test"
  "apps_petstore_test.pdb"
  "apps_petstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_petstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for apps_petstore_test.
# This may be replaced when dependencies are built.

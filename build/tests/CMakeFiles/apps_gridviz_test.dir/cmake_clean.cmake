file(REMOVE_RECURSE
  "CMakeFiles/apps_gridviz_test.dir/apps_gridviz_test.cpp.o"
  "CMakeFiles/apps_gridviz_test.dir/apps_gridviz_test.cpp.o.d"
  "apps_gridviz_test"
  "apps_gridviz_test.pdb"
  "apps_gridviz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_gridviz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

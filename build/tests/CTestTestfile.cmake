# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_time_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/component_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/messaging_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/apps_petstore_test[1]_include.cmake")
include("/root/repo/build/tests/apps_rubis_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/descriptor_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/sim_extra_test[1]_include.cmake")
include("/root/repo/build/tests/component_extra_test[1]_include.cmake")
include("/root/repo/build/tests/net_extra_test[1]_include.cmake")
include("/root/repo/build/tests/db_extra_test[1]_include.cmake")
include("/root/repo/build/tests/apps_gridviz_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")

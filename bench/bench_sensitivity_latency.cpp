// Sensitivity sweep S1: WAN latency. The paper's claim is that the design
// rules "almost completely insulate remote clients from wide-area effects"
// (§4.6) — so the final configuration's remote response times should be
// nearly flat in the WAN latency, while the centralized deployment grows
// linearly with it (2 RTTs per page).
#include <functional>
#include <iostream>
#include <vector>

#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

struct Point {
  double browser = 0.0;
  double bidder = 0.0;
};

Point run(double wan_ms, core::ConfigLevel level) {
  apps::rubis::RubisApp app;
  core::HarnessCalibration cal = core::rubis_calibration();
  cal.testbed.wan_one_way = sim::ms(wan_ms);
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(1500);
  spec.warmup = sim::sec(300);
  core::Experiment exp{app.driver(), spec, cal};
  exp.run();
  return Point{exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote),
               exp.results().pattern_mean_ms("Bidder", stats::ClientGroup::kRemote)};
}

}  // namespace

int main() {
  std::cout << "=== Sensitivity S1: remote response time vs WAN one-way latency ===\n"
            << "(RUBiS; centralized vs the final asynchronous-updates configuration)\n\n";

  // 6 latencies x 2 configurations = 12 independent trials; fan them across
  // the core::sweep pool and read results back in submission order.
  const std::vector<double> wans = {10.0, 25.0, 50.0, 100.0, 200.0, 400.0};
  std::vector<std::function<Point()>> trials;
  for (double wan : wans) {
    trials.push_back([wan] { return run(wan, core::ConfigLevel::kCentralized); });
    trials.push_back([wan] { return run(wan, core::ConfigLevel::kAsyncUpdates); });
  }
  std::vector<Point> points = core::sweep::run_trials(std::move(trials));

  stats::TextTable table{{"one-way latency (ms)", "centralized browser", "final browser",
                          "centralized bidder", "final bidder"}};
  for (std::size_t i = 0; i < wans.size(); ++i) {
    const Point& centralized = points[2 * i];
    const Point& final_cfg = points[2 * i + 1];
    table.add_row({stats::TextTable::cell_fixed(wans[i], 0),
                   stats::TextTable::cell_ms(centralized.browser),
                   stats::TextTable::cell_ms(final_cfg.browser),
                   stats::TextTable::cell_ms(centralized.bidder),
                   stats::TextTable::cell_ms(final_cfg.bidder)});
  }
  table.print(std::cout);

  std::cout << "\nCentralized remote times grow ~4x the one-way latency (two HTTP round\n"
            << "trips); the final configuration's browser column is essentially flat —\n"
            << "the wide-area network has been engineered out of the read path. The\n"
            << "bidder column keeps a ~1-RTT slope: transactional writes must still\n"
            << "reach the centre (§6's opening caveat).\n";
  return 0;
}

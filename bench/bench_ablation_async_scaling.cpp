// Ablation A4 (§4.5): the blocking push "suffers from severe scalability
// issues, since the response time for write operations is proportional to
// the number of individual fine-grained updates triggered by a single
// façade call" — and, in our sequential-push implementation, to the number
// of edge replicas. Asynchronous propagation is flat in both dimensions.
#include <iostream>

#include "bench/mini_world.hpp"
#include "stats/table.hpp"

namespace {

using namespace mutsvc;
using comp::CallContext;
using comp::Feature;
using sim::Task;

/// A façade write that updates `k` items in one transaction — the Commit
/// Order page writing the Inventory EJB once per cart line item.
void define_writer(bench::MiniWorld& w) {
  auto& writer = w.app.define("Writer", comp::ComponentKind::kStatelessSessionBean);
  writer.method({.name = "commit",
                 .cpu = sim::Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   const std::int64_t k = ctx.arg_int(0);
                   for (std::int64_t i = 0; i < k; ++i) {
                     co_await ctx.write_entity("Item", i, "qty", std::int64_t{1});
                   }
                 }});
}

double commit_latency(int edge_count, std::int64_t updates, bool async) {
  bench::MiniWorld w{edge_count};
  define_writer(w);
  auto plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  if (async) plan.enable(Feature::kAsyncUpdates);
  for (auto e : w.edges) plan.replicate_read_only("Item", e);
  auto& rt = w.start(std::move(plan));
  return w.timed([](comp::Runtime& rt, bench::MiniWorld& w, std::int64_t k) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Writer", "commit", k);
  }(rt, w, updates));
}

}  // namespace

int main() {
  std::cout << "=== Ablation A4: write latency scaling — blocking push vs async (§4.5) ===\n\n";

  std::cout << "Sweep 1: one update per transaction, growing edge replica count\n";
  mutsvc::stats::TextTable t1{{"edge replicas", "blocking push (ms)", "async publish (ms)"}};
  for (int edges : {1, 2, 4, 8}) {
    t1.add_row({std::to_string(edges),
                mutsvc::stats::TextTable::cell_fixed(commit_latency(edges, 1, false), 0),
                mutsvc::stats::TextTable::cell_fixed(commit_latency(edges, 1, true), 0)});
  }
  t1.print(std::cout);

  std::cout << "\nSweep 2: two edges, growing line items per Commit Order transaction\n";
  mutsvc::stats::TextTable t2{{"updates per tx", "blocking push (ms)", "async publish (ms)"}};
  for (std::int64_t k : {1, 2, 5, 10}) {
    t2.add_row({std::to_string(k),
                mutsvc::stats::TextTable::cell_fixed(commit_latency(2, k, false), 0),
                mutsvc::stats::TextTable::cell_fixed(commit_latency(2, k, true), 0)});
  }
  t2.print(std::cout);

  std::cout << "\nBlocking-push latency grows with the replica fan-out; asynchronous\n"
            << "updates keep the writer at local latency regardless ('its scalability\n"
            << "is limited only by the messaging middleware', §4.5). Updates within one\n"
            << "transaction ride a single bulk batch, so per-tx update count affects\n"
            << "neither variant's wide-area cost.\n";
  return 0;
}

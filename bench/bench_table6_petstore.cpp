// Reproduces Table 6: average response times (ms) for the five Java Pet
// Store configurations, local and remote clients.
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== Table 6: Average response times (ms) for five Pet Store "
               "configurations ===\n\n";

  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::petstore_calibration();

  bench::LadderRun run = bench::run_ladder(driver, cal, bench::base_spec());
  core::print_paper_table(std::cout, driver, run.results);

  std::cout << "\nPaper's Table 6 for reference (Local/Remote, ms):\n"
            << "  Centralized:      Main 87/488  Category 95/492  Product 94/492  "
               "Item 88/486  Search 106/496  Commit 158/708\n"
            << "  Remote facade:    Main 64/72   Category 78/387  Product 80/389  "
               "Item 72/373  Search 82/384   Commit 134/500\n"
            << "  St.comp.caching:  Main 55/55   Category 82/394  Product 84/390  "
               "Item 55/57   Search 77/393   Commit 584/950\n"
            << "  Query caching:    Main 56/55   Category 50/51   Product 51/51   "
               "Item 54/55   Search 87/481   Commit 614/966\n"
            << "  Async updates:    Main 61/59   Category 54/51   Product 53/53   "
               "Item 57/58   Search 92/459   Commit 195/536\n\n";

  for (std::size_t i = 0; i < run.experiments.size(); ++i) {
    std::cout << core::to_string(run.results[i].level) << ":\n";
    bench::print_utilization(std::cout, *run.experiments[i]);
  }
  return 0;
}

// Reproduces Table 7: average response times (ms) for the five RUBiS
// configurations, local and remote clients.
#include <iostream>

#include "apps/rubis/rubis.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== Table 7: Average response times (ms) for five RUBiS "
               "configurations ===\n\n";

  apps::rubis::RubisApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::rubis_calibration();

  bench::LadderRun run = bench::run_ladder(driver, cal, bench::base_spec());
  core::print_paper_table(std::cout, driver, run.results);

  std::cout
      << "\nPaper's Table 7 for reference (Local/Remote, ms):\n"
      << "  Centralized:      Main 14/421  Category 43/649  Item 27/430  Bids 40/446  "
         "UserInfo 43/452  PutBidForm 32/439  StoreBid 36/437  StoreComment 35/432\n"
      << "  Remote facade:    Main 10/4    Category 35/499  Item 24/275  Bids 35/300  "
         "UserInfo 34/379  PutBidForm 30/408  StoreBid 30/284  StoreComment 30/282\n"
      << "  St.comp.caching:  Main 13/3    Category 38/526  Item 19/7    Bids 30/323  "
         "UserInfo 31/404  PutBidForm 23/450  StoreBid 372/680 StoreComment 377/628\n"
      << "  Query caching:    Main 9/5     Category 16/6    Item 15/8    Bids 16/8    "
         "UserInfo 16/8    PutBidForm 15/7    StoreBid 377/798 StoreComment 374/729\n"
      << "  Async updates:    Main 12/4    Category 13/6    Item 14/7    Bids 15/10   "
         "UserInfo 15/10   PutBidForm 15/9    StoreBid 32/421  StoreComment 34/419\n\n";

  for (std::size_t i = 0; i < run.experiments.size(); ++i) {
    std::cout << core::to_string(run.results[i].level) << ":\n";
    bench::print_utilization(std::cout, *run.experiments[i]);
  }
  return 0;
}

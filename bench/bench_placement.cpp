// Ablation A5 (§5/§6): automatic component placement. Profiles each
// application in the centralized configuration, builds the weighted
// interaction graph, runs the placement algorithms, and checks that the
// optimizer *rediscovers* the paper's hand-built final configuration. Also
// compares algorithm quality/cost on synthetic graphs.
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "bench/table_common.hpp"
#include "core/placement/advisor.hpp"
#include "core/placement/graph.hpp"
#include "stats/table.hpp"

namespace {

using namespace mutsvc;
using core::placement::Algorithm;

core::placement::PlacementProblem profile_app(const apps::AppDriver& driver,
                                              const core::HarnessCalibration& cal) {
  // Profile at the Remote Façade rung: the interaction graph must reflect
  // the façade-structured application (§4.2 is a prerequisite for
  // distribution — profiling the pre-façade code path correctly tells the
  // optimizer *not* to distribute, since raw web-tier JDBC over the WAN
  // is worse than staying centralized; see bench_ablation_facade).
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kRemoteFacade;
  spec.duration = sim::sec(600);
  spec.warmup = sim::sec(0);
  core::Experiment exp{driver, spec, cal};
  exp.run();

  core::placement::GraphBuildOptions opts;
  opts.window = spec.duration;
  core::placement::PlacementProblem problem;
  problem.graph =
      core::placement::build_graph(exp.runtime().interaction_profile(), *driver.app, opts);
  return problem;
}

void run_for_app(const apps::AppDriver& driver, const core::HarnessCalibration& cal) {
  std::cout << "--- " << driver.name << " ---\n";
  core::placement::PlacementProblem problem = profile_app(driver, cal);
  std::cout << "interaction graph: " << problem.graph.vertex_count() << " vertices, "
            << problem.graph.edges().size() << " edges ("
            << problem.graph.free_vertex_count() << " free)\n";

  std::vector<Algorithm> algorithms{Algorithm::kBranchAndBound};  // exact reference
  if (problem.graph.free_vertex_count() <= 22) {
    algorithms.push_back(Algorithm::kExhaustive);  // exact cross-check
  }
  algorithms.insert(algorithms.end(),
                    {Algorithm::kGreedy, Algorithm::kLocalSearch, Algorithm::kAnnealing});

  stats::TextTable table{{"algorithm", "WAN delay (ms/s)", "vs centralized"}};
  core::placement::Advice best;
  for (Algorithm a : algorithms) {
    core::placement::Advice advice = core::placement::advise(problem, a, /*seed=*/7);
    table.add_row({core::placement::to_string(a),
                   stats::TextTable::cell_fixed(advice.optimized_cost, 1),
                   "x" + stats::TextTable::cell_fixed(advice.improvement_factor(), 1)});
    if (advice.optimized_cost <= best.optimized_cost || best.algorithm.empty()) {
      best = std::move(advice);
    }
  }
  table.print(std::cout);
  std::cout << best.describe(problem.graph) << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Ablation A5: profile-driven automatic placement (§5 automation) ===\n\n";

  {
    apps::petstore::PetStoreApp app;
    run_for_app(app.driver(), core::petstore_calibration());
  }
  {
    apps::rubis::RubisApp app;
    run_for_app(app.driver(), core::rubis_calibration());
  }

  std::cout
      << "The optimizer rediscovers the paper's final configuration: replicate the\n"
      << "web tier, session beans and delegating façades; give read-mostly entities\n"
      << "(Item/Inventory; RUBiS Item/User) read-only replicas; cache the browse\n"
      << "query classes at the edges; keep the writers (OrderProcessor, SB_Store*)\n"
      << "and write-heavy entities (Order, Bid, Comment) at the centre. It also\n"
      << "finds one improvement the hand-built ladder left on the table: read-only\n"
      << "Account replicas, which would localize Pet Store's Verify Signin page.\n"
      << "Greedy is myopic here — replicating any single component alone does not\n"
      << "help until its whole call chain moves, so chain-aware search is needed.\n";
  return 0;
}

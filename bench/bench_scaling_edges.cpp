// Sensitivity sweep S2: edge fan-out. Each added edge server brings its own
// client group (10 req/s). Reads scale out — every group is served by its
// local replicas — while the write path concentrates at the centre: under
// blocking push the writer pays one more WAN round trip per edge, under
// asynchronous updates it pays nothing (§4.5's scalability argument,
// beyond the paper's fixed two-edge testbed).
#include <functional>
#include <iostream>
#include <vector>

#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

struct Row {
  double browser = 0.0;
  double store_bid = 0.0;
  double main_cpu = 0.0;
};

Row run(std::size_t edges, core::ConfigLevel level) {
  apps::rubis::RubisApp app;
  core::HarnessCalibration cal = core::rubis_calibration();
  cal.testbed.edge_count = edges;
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(1200);
  spec.warmup = sim::sec(240);
  spec.total_request_rate = 10.0 * static_cast<double>(edges + 1);
  core::Experiment exp{app.driver(), spec, cal};
  exp.run();
  return Row{exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote),
             exp.results().page_mean_ms("Bidder", "Store Bid", stats::ClientGroup::kLocal),
             exp.cpu_utilization(exp.nodes().main_server)};
}

}  // namespace

int main() {
  std::cout << "=== Sensitivity S2: scaling the edge fan-out (10 req/s per site) ===\n\n";

  // 4 fan-outs x 2 configurations = 8 independent trials, run through the
  // core::sweep pool; the merge preserves submission order.
  const std::vector<std::size_t> fanouts = {1, 2, 4, 8};
  std::vector<std::function<Row()>> trials;
  for (std::size_t edges : fanouts) {
    trials.push_back([edges] { return run(edges, core::ConfigLevel::kQueryCaching); });
    trials.push_back([edges] { return run(edges, core::ConfigLevel::kAsyncUpdates); });
  }
  std::vector<Row> rows = core::sweep::run_trials(std::move(trials));

  stats::TextTable table{{"edges", "total req/s", "remote browser (ms)",
                          "Store Bid, blocking (ms)", "Store Bid, async (ms)",
                          "main CPU (async)"}};
  for (std::size_t i = 0; i < fanouts.size(); ++i) {
    const std::size_t edges = fanouts[i];
    const Row& blocking = rows[2 * i];  // blocking push rung
    const Row& async = rows[2 * i + 1];
    table.add_row({std::to_string(edges),
                   stats::TextTable::cell_fixed(10.0 * static_cast<double>(edges + 1), 0),
                   stats::TextTable::cell_ms(async.browser),
                   stats::TextTable::cell_ms(blocking.store_bid),
                   stats::TextTable::cell_ms(async.store_bid),
                   stats::TextTable::cell_fixed(async.main_cpu * 100.0, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nRemote browsing stays edge-local at every fan-out; the blocking-push\n"
            << "write cost climbs ~200 ms per added edge while the asynchronous write\n"
            << "stays flat. The main server's CPU grows with the total offered load —\n"
            << "it still applies every write — which is the residual centralization\n"
            << "the paper's §6 defers to database replication techniques.\n";
  return 0;
}

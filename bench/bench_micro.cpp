// Substrate microbenchmarks (google-benchmark): simulation kernel, caches,
// database engine, and placement algorithms.
#include <benchmark/benchmark.h>

#include "cache/query_cache.hpp"
#include "cache/read_only_cache.hpp"
#include "core/placement/algorithms.hpp"
#include "db/database.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mutsvc;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_after(sim::us(i % 1000), [&fired] { ++fired; });
    }
    sim.run_until();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CoroutineSpawnAwait(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.spawn([](sim::Simulator& s) -> sim::Task<void> {
        co_await s.wait(sim::us(10));
        co_await s.wait(sim::us(10));
      }(sim));
    }
    sim.run_until();
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_CoroutineSpawnAwait)->Arg(1000)->Arg(10000);

void BM_FifoResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FifoResource cpu{sim, 2};
    for (int i = 0; i < 1000; ++i) {
      sim.spawn([](sim::FifoResource& r) -> sim::Task<void> {
        co_await r.consume(sim::us(50));
      }(cpu));
    }
    sim.run_until();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FifoResourceContention);

void BM_NetworkDeliverMultiHop(benchmark::State& state) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto a = topo.add_node("a", net::NodeRole::kAppServer);
  auto h = topo.add_node("h", net::NodeRole::kRouter);
  auto b = topo.add_node("b", net::NodeRole::kAppServer);
  topo.add_link(a, h, sim::ms(50), 100e6);
  topo.add_link(h, b, sim::ms(50), 100e6);
  net::Network net{sim, topo};
  for (auto _ : state) {
    sim.spawn([](net::Network& n, net::NodeId a, net::NodeId b) -> sim::Task<void> {
      co_await n.deliver(a, b, 1024);
    }(net, a, b));
    sim.run_until();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDeliverMultiHop);

void BM_TableIndexedFind(benchmark::State& state) {
  db::Table t{"item", {{"id", db::ColumnType::kInt}, {"g", db::ColumnType::kInt}}};
  for (std::int64_t i = 0; i < state.range(0); ++i) t.insert(db::Row{i, i % 100});
  t.create_index("g");
  std::int64_t g = 0;
  for (auto _ : state) {
    auto rows = t.find_equal("g", db::Value{g++ % 100});
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableIndexedFind)->Arg(1000)->Arg(10000);

void BM_QueryCacheHit(benchmark::State& state) {
  cache::QueryCache qc;
  qc.fill("k", {db::Row{std::int64_t{1}, std::int64_t{2}}}, 1);
  for (auto _ : state) {
    auto entry = qc.get("k");
    benchmark::DoNotOptimize(entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCacheHit);

void BM_ReadOnlyCacheHit(benchmark::State& state) {
  cache::ReadOnlyCache c{"Item"};
  for (std::int64_t i = 0; i < 1000; ++i) c.fill(i, db::Row{i, i}, 1);
  std::int64_t pk = 0;
  for (auto _ : state) {
    auto entry = c.get(pk++ % 1000);
    benchmark::DoNotOptimize(entry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOnlyCacheHit);

core::placement::PlacementProblem synthetic_problem(std::size_t components, std::uint64_t seed) {
  using namespace core::placement;
  sim::RngStream rng{seed};
  PlacementProblem p;
  p.graph.add_vertex(Vertex{"__client_local__", VertexKind::kClientLocal});
  p.graph.add_vertex(Vertex{"__client_remote__", VertexKind::kClientRemote});
  p.graph.add_vertex(Vertex{"__database__", VertexKind::kDatabase});
  for (std::size_t i = 0; i < components; ++i) {
    VertexKind kind = i % 4 == 0   ? VertexKind::kWebComponent
                      : i % 4 == 1 ? VertexKind::kStatelessService
                      : i % 4 == 2 ? VertexKind::kSharedEntity
                                   : VertexKind::kQueryResults;
    Vertex v{"c" + std::to_string(i), kind};
    if (kind == VertexKind::kSharedEntity) v.write_rate = rng.uniform(0.0, 2.0);
    p.graph.add_vertex(std::move(v));
    if (i % 4 == 0) {
      p.graph.add_edge("__client_remote__", "c" + std::to_string(i), rng.uniform(1.0, 10.0),
                       2.0);
    } else {
      p.graph.add_edge("c" + std::to_string(i - 1), "c" + std::to_string(i),
                       rng.uniform(0.5, 8.0), 1.5);
    }
    if (i % 4 == 2) p.graph.add_edge("c" + std::to_string(i), "__database__", 2.0, 1.0);
  }
  return p;
}

void BM_PlacementCostEval(benchmark::State& state) {
  auto p = synthetic_problem(static_cast<std::size_t>(state.range(0)), 3);
  core::placement::CostModel model{p};
  core::placement::Assignment a(p.graph.vertex_count(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(a));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementCostEval)->Arg(16)->Arg(64)->Arg(256);

void BM_PlacementGreedy(benchmark::State& state) {
  auto p = synthetic_problem(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = core::placement::solve_greedy(p);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlacementGreedy)->Arg(16)->Arg(64)->Arg(128);

void BM_PlacementLocalSearch(benchmark::State& state) {
  auto p = synthetic_problem(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = core::placement::solve_local_search(p, sim::RngStream{9}, 4);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlacementLocalSearch)->Arg(16)->Arg(64);

void BM_PlacementAnnealing(benchmark::State& state) {
  auto p = synthetic_problem(static_cast<std::size_t>(state.range(0)), 3);
  core::placement::AnnealingParams params;
  params.iterations = 5000;
  for (auto _ : state) {
    auto r = core::placement::solve_annealing(p, sim::RngStream{9}, params);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_PlacementAnnealing)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();

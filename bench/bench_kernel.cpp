// Wall-clock microbenchmark of the simulation kernel and the DB hot path.
//
// Establishes the repo's perf trajectory: results land in BENCH_kernel.json
// (override with MUTSVC_BENCH_JSON) and CI's perf-smoke job fails on a >25%
// events/sec regression against the checked-in baseline via tools/benchstat.
//
// Workloads:
//  - kernel.coroutine_timer: the event-loop hot path — many coroutines
//    sleeping on Simulator::wait, i.e. millions of schedule/heap/resume
//    cycles. This is the workload the EventFn small-buffer callable and the
//    POD-heap/slab event queue were built for.
//  - kernel.spilled_events: same loop but with captures larger than the
//    EventFn inline buffer, exercising the spill path.
//  - db.indexed_finder: Table::find_equal + for_each_equal probes against a
//    secondary index (transparent Value comparator, no key materialization).
//  - experiment.response_hist: a short metrics-enabled Pet Store run whose
//    response-time histogram is exported as `hist_*` metrics — these are
//    simulated counts, so benchstat holds them bit-identical across runs
//    and MUTSVC_JOBS values (wall-clock load on the host cannot move them).
//  - kernel.parallel_trial: one many-edge sharded trial run sequentially and
//    again under the windowed executor with four workers. The event counts
//    and sample counts must match bit-for-bit (the bench aborts otherwise);
//    the reported `wall_speedup_x` is the within-trial parallel win.
//
// MUTSVC_FAST=1 shrinks everything to a CI smoke run.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "db/table.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "tools/perf/perfjson.hpp"

using namespace mutsvc;

namespace {

bool fast_mode() { return std::getenv("MUTSVC_FAST") != nullptr; }

[[nodiscard]] sim::Task<void> ticker(sim::Simulator& s, int id) {
  const sim::Duration period = sim::us(50 + id % 97);
  for (;;) co_await s.wait(period);
}

perf::Benchmark bench_coroutine_timer() {
  const int tasks = 512;
  const double sim_seconds = fast_mode() ? 0.1 : 1.0;
  sim::Simulator s(1);
  for (int i = 0; i < tasks; ++i) s.spawn(ticker(s, i));
  perf::WallTimer timer;
  s.run_until(sim::SimTime::origin() + sim::sec(sim_seconds));
  const double wall = timer.seconds();
  const auto events = static_cast<double>(s.executed_events());
  perf::Benchmark b{"kernel.coroutine_timer", {}};
  b.add("events", events);
  b.add("wall_seconds", wall);
  b.add("wall_events_per_sec", wall > 0.0 ? events / wall : 0.0);
  return b;
}

perf::Benchmark bench_spilled_events() {
  // Captures of 64 bytes force the EventFn spill path on every event.
  struct Fat {
    std::uint64_t pad[8];
  };
  const double sim_seconds = fast_mode() ? 0.05 : 0.5;
  sim::Simulator s(1);
  std::uint64_t acc = 0;
  // Self-rescheduling chain of 64 spilled events per tick.
  for (int i = 0; i < 64; ++i) {
    struct Chain {
      sim::Simulator* s;
      std::uint64_t* acc;
      Fat payload;
      void operator()() const {
        *acc += payload.pad[0];
        s->schedule_after(sim::us(20), Chain{s, acc, payload});
      }
    };
    s.schedule_after(sim::us(i), Chain{&s, &acc, Fat{{static_cast<std::uint64_t>(i)}}});
  }
  perf::WallTimer timer;
  s.run_until(sim::SimTime::origin() + sim::sec(sim_seconds));
  const double wall = timer.seconds();
  const auto events = static_cast<double>(s.executed_events());
  perf::Benchmark b{"kernel.spilled_events", {}};
  b.add("events", events);
  b.add("wall_seconds", wall);
  b.add("wall_events_per_sec", wall > 0.0 ? events / wall : 0.0);
  return b;
}

perf::Benchmark bench_indexed_finder() {
  const std::int64_t rows = fast_mode() ? 5000 : 20000;
  const std::int64_t groups = 100;
  const std::int64_t probes = fast_mode() ? 40000 : 400000;

  db::Table t("items", {{"id", db::ColumnType::kInt},
                        {"g", db::ColumnType::kInt},
                        {"name", db::ColumnType::kText}});
  t.create_index("g");
  for (std::int64_t i = 1; i <= rows; ++i) {
    t.insert(db::Row{i, i % groups, "item-" + std::to_string(i)});
  }

  std::uint64_t matched = 0;
  perf::WallTimer timer;
  for (std::int64_t p = 0; p < probes; ++p) {
    const db::Value key = p % groups;
    if ((p & 1) == 0) {
      t.for_each_equal("g", key, [&](const db::Row& r) { matched += r.size(); });
    } else {
      matched += t.find_equal("g", key).size();
    }
  }
  const double wall = timer.seconds();
  perf::Benchmark b{"db.indexed_finder", {}};
  b.add("probes", static_cast<double>(probes));
  b.add("matched", static_cast<double>(matched));
  b.add("wall_seconds", wall);
  b.add("wall_ops_per_sec", wall > 0.0 ? static_cast<double>(probes) / wall : 0.0);
  return b;
}

perf::Benchmark bench_response_hist() {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kStatefulComponentCaching;
  spec.duration = sim::sec(fast_mode() ? 120 : 300);
  spec.warmup = sim::sec(30);
  // The metrics sampler is incompatible with the windowed executor, so this
  // workload pins the sequential loop even under MUTSVC_PAR_DOMAINS.
  spec.parallel_domains = 0;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.enable_metrics(sim::sec(10));
  perf::WallTimer timer;
  exp.run();
  const double wall = timer.seconds();

  perf::Benchmark b{"experiment.response_hist", {}};
  b.add("samples", static_cast<double>(exp.results().total_samples()));
  stats::MetricsRegistry& main = exp.metrics(exp.nodes().main_server);
  perf::add_histogram(b, "response_ms", main.histogram("response_ms"));
  b.add("wall_seconds", wall);
  return b;
}

perf::Benchmark bench_parallel_trial() {
  // The windowed-executor speedup workload (DESIGN §15): a many-edge
  // query-caching trial over eight DB shards, where every edge island stays
  // an independent lookahead domain (async updates would merge them into the
  // main island). The identical trial runs sequentially and with four
  // windowed workers; the trajectories must match bit-for-bit before any
  // speedup is worth reporting.
  struct TrialResult {
    double wall = 0.0;
    std::uint64_t events = 0;
    std::uint64_t samples = 0;
  };
  auto run_once = [](int workers) {
    apps::petstore::PetStoreApp app;
    core::HarnessCalibration cal = core::petstore_calibration();
    cal.testbed.edge_count = 6;
    core::ExperimentSpec spec;
    spec.level = core::ConfigLevel::kQueryCaching;
    spec.shard.shards = 8;
    spec.total_request_rate = 60.0;
    spec.duration = sim::sec(fast_mode() ? 60 : 240);
    spec.warmup = sim::sec(10);
    spec.parallel_domains = workers;
    core::Experiment exp{app.driver(), spec, cal};
    perf::WallTimer timer;
    exp.run();
    return TrialResult{timer.seconds(), exp.simulator().executed_events(),
                       exp.results().total_samples()};
  };

  const TrialResult serial = run_once(0);
  const TrialResult par = run_once(4);
  if (serial.events != par.events || serial.samples != par.samples) {
    std::cerr << "bench_kernel: windowed trial diverged from sequential (" << par.events << "/"
              << par.samples << " events/samples vs " << serial.events << "/" << serial.samples
              << ")\n";
    std::exit(1);
  }
  const double speedup = par.wall > 0.0 ? serial.wall / par.wall : 0.0;
  // On a multi-core host the full-length run must clear the 1.5x acceptance
  // bar; smoke runs and single-core hosts report honestly without gating.
  const unsigned cores = std::thread::hardware_concurrency();  // simlint:allow(sim-shared-across-threads)
  if (!fast_mode() && cores >= 4 && speedup < 1.5) {
    std::cerr << "bench_kernel: kernel.parallel_trial speedup " << speedup << "x < 1.5x on a "
              << cores << "-core host\n";
    std::exit(1);
  }

  perf::Benchmark b{"kernel.parallel_trial", {}};
  b.add("events", static_cast<double>(serial.events));
  b.add("samples", static_cast<double>(serial.samples));
  b.add("wall_serial_seconds", serial.wall);
  b.add("wall_par4_seconds", par.wall);
  b.add("wall_serial_events_per_sec",
        serial.wall > 0.0 ? static_cast<double>(serial.events) / serial.wall : 0.0);
  b.add("wall_par4_events_per_sec",
        par.wall > 0.0 ? static_cast<double>(par.events) / par.wall : 0.0);
  b.add("wall_speedup_x", speedup);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = perf::bench_json_path_or("BENCH_kernel.json");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) out_path = argv[++i];
  }

  std::cout << "=== bench_kernel: sim-kernel + DB hot-path wall-clock microbench ===\n"
            << (fast_mode() ? "(MUTSVC_FAST smoke run)\n" : "") << "\n";

  std::vector<perf::Benchmark> results;
  results.push_back(bench_coroutine_timer());
  results.push_back(bench_spilled_events());
  results.push_back(bench_indexed_finder());
  results.push_back(bench_response_hist());
  results.push_back(bench_parallel_trial());

  perf::Benchmark host{"host", {}};
  host.add("wall_peak_rss_bytes", static_cast<double>(perf::peak_rss_bytes()));
  results.push_back(host);

  for (const auto& b : results) {
    std::cout << b.name << "\n";
    for (const auto& m : b.metrics) {
      std::printf("  %-28s %s\n", m.name.c_str(), perf::format_number(m.value).c_str());
    }
  }

  perf::write_bench_json(out_path, "bench_kernel", results);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

// Wall-clock microbenchmark of the simulation kernel and the DB hot path.
//
// Establishes the repo's perf trajectory: results land in BENCH_kernel.json
// (override with MUTSVC_BENCH_JSON) and CI's perf-smoke job fails on a >25%
// events/sec regression against the checked-in baseline via tools/benchstat.
//
// Workloads:
//  - kernel.coroutine_timer: the event-loop hot path — many coroutines
//    sleeping on Simulator::wait, i.e. millions of schedule/heap/resume
//    cycles. This is the workload the EventFn small-buffer callable and the
//    POD-heap/slab event queue were built for.
//  - kernel.spilled_events: same loop but with captures larger than the
//    EventFn inline buffer, exercising the spill path.
//  - db.indexed_finder: Table::find_equal + for_each_equal probes against a
//    secondary index (transparent Value comparator, no key materialization).
//  - experiment.response_hist: a short metrics-enabled Pet Store run whose
//    response-time histogram is exported as `hist_*` metrics — these are
//    simulated counts, so benchstat holds them bit-identical across runs
//    and MUTSVC_JOBS values (wall-clock load on the host cannot move them).
//  - kernel.parallel_trial: one many-edge sharded trial run sequentially and
//    again under the windowed executor with four workers. The event counts
//    and sample counts must match bit-for-bit (the bench aborts otherwise);
//    the reported `wall_speedup_x` is the within-trial parallel win.
//  - kernel.sessions: one million concurrent sessions held as 40-byte FSM
//    records in the SessionFsmEngine arena (DESIGN §16) against a local
//    fixed-latency executor. Aborts if memory-per-session leaves its budget
//    or the fleet fails to become fully resident; `sessions`, `requests`,
//    `events`, and the byte metrics are simulated/deterministic while
//    `wall_sessions_per_core` tracks host throughput.
//
// MUTSVC_FAST=1 shrinks everything to a CI smoke run.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "db/table.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "stats/collector.hpp"
#include "tools/perf/perfjson.hpp"
#include "workload/arrivals.hpp"
#include "workload/loadgen.hpp"
#include "workload/session_fsm.hpp"

using namespace mutsvc;

namespace {

bool fast_mode() { return std::getenv("MUTSVC_FAST") != nullptr; }

[[nodiscard]] sim::Task<void> ticker(sim::Simulator& s, int id) {
  const sim::Duration period = sim::us(50 + id % 97);
  for (;;) co_await s.wait(period);
}

perf::Benchmark bench_coroutine_timer() {
  const int tasks = 512;
  const double sim_seconds = fast_mode() ? 0.1 : 1.0;
  sim::Simulator s(1);
  for (int i = 0; i < tasks; ++i) s.spawn(ticker(s, i));
  perf::WallTimer timer;
  s.run_until(sim::SimTime::origin() + sim::sec(sim_seconds));
  const double wall = timer.seconds();
  const auto events = static_cast<double>(s.executed_events());
  perf::Benchmark b{"kernel.coroutine_timer", {}};
  b.add("events", events);
  b.add("wall_seconds", wall);
  b.add("wall_events_per_sec", wall > 0.0 ? events / wall : 0.0);
  return b;
}

perf::Benchmark bench_spilled_events() {
  // Captures of 64 bytes force the EventFn spill path on every event.
  struct Fat {
    std::uint64_t pad[8];
  };
  const double sim_seconds = fast_mode() ? 0.05 : 0.5;
  sim::Simulator s(1);
  std::uint64_t acc = 0;
  // Self-rescheduling chain of 64 spilled events per tick.
  for (int i = 0; i < 64; ++i) {
    struct Chain {
      sim::Simulator* s;
      std::uint64_t* acc;
      Fat payload;
      void operator()() const {
        *acc += payload.pad[0];
        s->schedule_after(sim::us(20), Chain{s, acc, payload});
      }
    };
    s.schedule_after(sim::us(i), Chain{&s, &acc, Fat{{static_cast<std::uint64_t>(i)}}});
  }
  perf::WallTimer timer;
  s.run_until(sim::SimTime::origin() + sim::sec(sim_seconds));
  const double wall = timer.seconds();
  const auto events = static_cast<double>(s.executed_events());
  perf::Benchmark b{"kernel.spilled_events", {}};
  b.add("events", events);
  b.add("wall_seconds", wall);
  b.add("wall_events_per_sec", wall > 0.0 ? events / wall : 0.0);
  return b;
}

perf::Benchmark bench_indexed_finder() {
  const std::int64_t rows = fast_mode() ? 5000 : 20000;
  const std::int64_t groups = 100;
  const std::int64_t probes = fast_mode() ? 40000 : 400000;

  db::Table t("items", {{"id", db::ColumnType::kInt},
                        {"g", db::ColumnType::kInt},
                        {"name", db::ColumnType::kText}});
  t.create_index("g");
  for (std::int64_t i = 1; i <= rows; ++i) {
    t.insert(db::Row{i, i % groups, "item-" + std::to_string(i)});
  }

  std::uint64_t matched = 0;
  perf::WallTimer timer;
  for (std::int64_t p = 0; p < probes; ++p) {
    const db::Value key = p % groups;
    if ((p & 1) == 0) {
      t.for_each_equal("g", key, [&](const db::Row& r) { matched += r.size(); });
    } else {
      matched += t.find_equal("g", key).size();
    }
  }
  const double wall = timer.seconds();
  perf::Benchmark b{"db.indexed_finder", {}};
  b.add("probes", static_cast<double>(probes));
  b.add("matched", static_cast<double>(matched));
  b.add("wall_seconds", wall);
  b.add("wall_ops_per_sec", wall > 0.0 ? static_cast<double>(probes) / wall : 0.0);
  return b;
}

perf::Benchmark bench_response_hist() {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kStatefulComponentCaching;
  spec.duration = sim::sec(fast_mode() ? 120 : 300);
  spec.warmup = sim::sec(30);
  // The metrics sampler is incompatible with the windowed executor, so this
  // workload pins the sequential loop even under MUTSVC_PAR_DOMAINS.
  spec.parallel_domains = 0;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.enable_metrics(sim::sec(10));
  perf::WallTimer timer;
  exp.run();
  const double wall = timer.seconds();

  perf::Benchmark b{"experiment.response_hist", {}};
  b.add("samples", static_cast<double>(exp.results().total_samples()));
  stats::MetricsRegistry& main = exp.metrics(exp.nodes().main_server);
  perf::add_histogram(b, "response_ms", main.histogram("response_ms"));
  b.add("wall_seconds", wall);
  return b;
}

perf::Benchmark bench_parallel_trial() {
  // The windowed-executor speedup workload (DESIGN §15): a many-edge
  // query-caching trial over eight DB shards, where every edge island stays
  // an independent lookahead domain (async updates would merge them into the
  // main island). The identical trial runs sequentially and with four
  // windowed workers; the trajectories must match bit-for-bit before any
  // speedup is worth reporting.
  struct TrialResult {
    double wall = 0.0;
    std::uint64_t events = 0;
    std::uint64_t samples = 0;
  };
  auto run_once = [](int workers) {
    apps::petstore::PetStoreApp app;
    core::HarnessCalibration cal = core::petstore_calibration();
    cal.testbed.edge_count = 6;
    core::ExperimentSpec spec;
    spec.level = core::ConfigLevel::kQueryCaching;
    spec.shard.shards = 8;
    spec.total_request_rate = 60.0;
    spec.duration = sim::sec(fast_mode() ? 60 : 240);
    spec.warmup = sim::sec(10);
    spec.parallel_domains = workers;
    core::Experiment exp{app.driver(), spec, cal};
    perf::WallTimer timer;
    exp.run();
    return TrialResult{timer.seconds(), exp.simulator().executed_events(),
                       exp.results().total_samples()};
  };

  const TrialResult serial = run_once(0);
  const TrialResult par = run_once(4);
  if (serial.events != par.events || serial.samples != par.samples) {
    std::cerr << "bench_kernel: windowed trial diverged from sequential (" << par.events << "/"
              << par.samples << " events/samples vs " << serial.events << "/" << serial.samples
              << ")\n";
    std::exit(1);
  }
  const double speedup = par.wall > 0.0 ? serial.wall / par.wall : 0.0;
  // On a multi-core host the full-length run must clear the 1.5x acceptance
  // bar; smoke runs and single-core hosts report honestly without gating.
  const unsigned cores = std::thread::hardware_concurrency();  // simlint:allow(sim-shared-across-threads)
  if (!fast_mode() && cores >= 4 && speedup < 1.5) {
    std::cerr << "bench_kernel: kernel.parallel_trial speedup " << speedup << "x < 1.5x on a "
              << cores << "-core host\n";
    std::exit(1);
  }

  perf::Benchmark b{"kernel.parallel_trial", {}};
  b.add("events", static_cast<double>(serial.events));
  b.add("samples", static_cast<double>(serial.samples));
  b.add("wall_serial_seconds", serial.wall);
  b.add("wall_par4_seconds", par.wall);
  b.add("wall_serial_events_per_sec",
        serial.wall > 0.0 ? static_cast<double>(serial.events) / serial.wall : 0.0);
  b.add("wall_par4_events_per_sec",
        par.wall > 0.0 ? static_cast<double>(par.events) / par.wall : 0.0);
  b.add("wall_speedup_x", speedup);
  return b;
}

/// The service stub for kernel.sessions: a constant-latency responder, so
/// the bench isolates the engine + kernel and the request count stays a
/// pure function of the timing contract.
class FixedLatencyExecutor final : public workload::RequestExecutor {
 public:
  FixedLatencyExecutor(sim::Simulator& sim, sim::Duration latency)
      : sim_(sim), latency_(latency) {}
  [[nodiscard]] sim::Task<workload::RequestOutcome> execute(net::NodeId,
                                                            const workload::PageRequest&) override {
    co_await sim_.wait(latency_);
    co_return workload::RequestOutcome::kOk;
  }

 private:
  sim::Simulator& sim_;
  sim::Duration latency_;
};

/// Random-walk script (2–4 pages over a 5-page site) so every session
/// exercises the per-record rng stream and scratch words, not a fixed loop.
class SessionsBenchModel final : public workload::FsmScriptModel {
 public:
  std::optional<workload::PageRequest> next(std::uint32_t step, workload::FsmScratch& scratch,
                                            workload::SmallRng& rng) const override {
    if (step == 0) scratch.w0 = static_cast<std::uint64_t>(rng.uniform_int(2, 4));
    if (step >= scratch.w0) return std::nullopt;
    workload::PageRequest req;
    req.page = "Page" + std::to_string(rng.uniform_int(0, 4));
    req.pattern = pattern();
    req.component = "Web";
    req.method = "serve";
    return req;
  }
  [[nodiscard]] const char* pattern() const override { return "Bench"; }
};

perf::Benchmark bench_sessions() {
  // The million-session acceptance cell (ISSUE 9): the whole fleet resident
  // at once as recurring closed-loop sessions, default 7s think / 100ms
  // calendar quantum, run for two think intervals so every session issues
  // at least twice.
  const std::size_t sessions = fast_mode() ? 100000 : 1000000;
  const double sim_seconds = 15.0;
  constexpr double kBytesPerSessionCeiling = 96.0;

  sim::Simulator s(1);
  stats::ResponseTimeCollector collector;
  FixedLatencyExecutor exec{s, sim::ms(5)};
  workload::SessionFsmEngine engine{s, exec, collector};
  const std::uint8_t kind = engine.add_kind(std::make_shared<SessionsBenchModel>(),
                                            net::NodeId{0}, stats::ClientGroup::kLocal);
  const sim::SimTime end = sim::SimTime::origin() + sim::sec(sim_seconds);
  perf::WallTimer timer;
  engine.start_population(kind, sessions, end, /*seed=*/2026);
  const double resident_bytes_per_session =
      static_cast<double>(engine.arena_bytes()) / static_cast<double>(sessions);
  s.run_until(end);
  const double wall = timer.seconds();

  if (engine.peak_live_sessions() != sessions) {
    std::cerr << "bench_kernel: kernel.sessions fleet never fully resident ("
              << engine.peak_live_sessions() << " of " << sessions << ")\n";
    std::exit(1);
  }
  if (resident_bytes_per_session > kBytesPerSessionCeiling) {
    std::cerr << "bench_kernel: kernel.sessions memory-per-session "
              << resident_bytes_per_session << " bytes exceeds the " << kBytesPerSessionCeiling
              << "-byte ceiling\n";
    std::exit(1);
  }
  if (engine.requests_issued() < 2 * sessions ||
      engine.requests_issued() != engine.requests_completed() + engine.requests_in_flight()) {
    std::cerr << "bench_kernel: kernel.sessions accounting broke (issued "
              << engine.requests_issued() << ", completed " << engine.requests_completed()
              << ", in flight " << engine.requests_in_flight() << ")\n";
    std::exit(1);
  }

  const auto events = static_cast<double>(s.executed_events());
  const unsigned cores = std::thread::hardware_concurrency();  // simlint:allow(sim-shared-across-threads)
  perf::Benchmark b{"kernel.sessions", {}};
  b.add("sessions", static_cast<double>(sessions));
  b.add("requests", static_cast<double>(engine.requests_issued()));
  b.add("samples", static_cast<double>(collector.total_samples()));
  b.add("events", events);
  b.add("record_bytes", static_cast<double>(workload::SessionFsmEngine::record_bytes()));
  b.add("bytes_per_session", resident_bytes_per_session);
  b.add("wall_seconds", wall);
  b.add("wall_events_per_sec", wall > 0.0 ? events / wall : 0.0);
  b.add("wall_sessions_per_core",
        cores > 0 ? static_cast<double>(sessions) / static_cast<double>(cores) : 0.0);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = perf::bench_json_path_or("BENCH_kernel.json");
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) out_path = argv[++i];
  }

  std::cout << "=== bench_kernel: sim-kernel + DB hot-path wall-clock microbench ===\n"
            << (fast_mode() ? "(MUTSVC_FAST smoke run)\n" : "") << "\n";

  std::vector<perf::Benchmark> results;
  results.push_back(bench_coroutine_timer());
  results.push_back(bench_spilled_events());
  results.push_back(bench_indexed_finder());
  results.push_back(bench_response_hist());
  results.push_back(bench_parallel_trial());
  results.push_back(bench_sessions());

  perf::Benchmark host{"host", {}};
  host.add("wall_peak_rss_bytes", static_cast<double>(perf::peak_rss_bytes()));
  results.push_back(host);

  for (const auto& b : results) {
    std::cout << b.name << "\n";
    for (const auto& m : b.metrics) {
      std::printf("  %-28s %s\n", m.name.c_str(), perf::format_number(m.value).c_str());
    }
  }

  perf::write_bench_json(out_path, "bench_kernel", results);
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

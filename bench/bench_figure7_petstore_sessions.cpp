// Reproduces Figure 7: Java Pet Store session average response times —
// one bar per (client group x usage pattern) for each of the five
// configurations.
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== Figure 7: Java Pet Store session average response times (ms) ===\n\n";

  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  bench::LadderRun run =
      bench::run_ladder(driver, core::petstore_calibration(), bench::base_spec());
  core::print_session_averages(std::cout, driver, run.results);
  bench::maybe_write_ladder_json("petstore", run);

  std::cout << "\nPaper's Figure 7 (approximate bar heights, ms):\n"
            << "  Centralized:   LocalBrowser ~92  LocalBuyer ~92  RemoteBrowser ~490  "
               "RemoteBuyer ~530\n"
            << "  Remote facade: ~75 ~65 ~385 ~225\n"
            << "  St.comp.cache: ~72 ~120 ~230 ~240\n"
            << "  Query caching: ~55 ~125 ~75 ~235\n"
            << "  Async updates: ~55 ~75 ~75 ~130\n\n"
            << "Shape checks: every distributed configuration beats centralized for\n"
            << "remote clients; the blocking-push configurations penalize buyers;\n"
            << "asynchronous updates restore buyer latency while keeping browser wins.\n";
  return 0;
}

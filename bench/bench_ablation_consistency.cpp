// Ablation A7 (§5's "relaxed consistency parameters", à la TACT): the
// consistency spectrum between §4.3's blocking push (zero staleness,
// writers pay the WAN) and §4.5's unbounded async (local writers, stale
// windows). Bounded-staleness lets a deployer pick intermediate points.
#include <iostream>

#include "bench/mini_world.hpp"
#include "stats/table.hpp"

namespace {

using namespace mutsvc;
using comp::CallContext;
using comp::Feature;
using sim::Task;

struct Outcome {
  double mean_write_ms = 0.0;
  double stale_fraction = 0.0;
  double mean_lag = 0.0;
  std::uint64_t bounded_waits = 0;
};

void define_components(bench::MiniWorld& w) {
  auto& reader = w.app.define("Reader", comp::ComponentKind::kStatelessSessionBean);
  reader.method({.name = "get",
                 .cpu = sim::Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   (void)co_await ctx.read_entity("Item", ctx.arg_int(0));
                 }});
  auto& writer = w.app.define("Writer", comp::ComponentKind::kStatelessSessionBean);
  writer.method({.name = "set",
                 .cpu = sim::Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   co_await ctx.write_entity("Item", ctx.arg_int(0), "qty", ctx.arg(1));
                 }});
}

/// Drives bursts of writes at the main server against a steady stream of
/// edge reads of the same hot item, and measures writer latency vs observed
/// staleness. `mode`: 0 = blocking push, >0 = async with that order bound,
/// -1 = unbounded async.
Outcome run(int mode) {
  bench::MiniWorld w{2};
  define_components(w);
  auto plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  if (mode != 0) {
    plan.enable(Feature::kAsyncUpdates);
    if (mode > 0) plan.set_staleness_bound(static_cast<std::uint32_t>(mode));
  }
  for (auto e : w.edges) {
    plan.replicate_read_only("Item", e);
    plan.place("Reader", e);
  }
  comp::RuntimeConfig cfg;
  cfg.jms_accept = sim::ms(1);
  auto& rt = w.start(std::move(plan), cfg);

  // Edge readers: poll the hot item every 40 ms for 60 s.
  for (auto e : w.edges) {
    w.sim.spawn([](comp::Runtime& rt, bench::MiniWorld& w, net::NodeId e) -> Task<void> {
      for (int i = 0; i < 1500; ++i) {
        (void)co_await rt.invoke(e, "Reader", "get", std::int64_t{1});
        co_await w.sim.wait(sim::ms(40));
      }
    }(rt, w, e));
  }

  // Writer: bursts of 5 updates every second.
  double total_write_ms = 0.0;
  int writes = 0;
  w.sim.spawn([](comp::Runtime& rt, bench::MiniWorld& w, double& total,
                 int& writes) -> Task<void> {
    for (int burst = 0; burst < 60; ++burst) {
      for (int k = 0; k < 5; ++k) {
        sim::SimTime t0 = w.sim.now();
        (void)co_await rt.invoke(w.main, "Writer", "set", std::int64_t{1},
                                 std::int64_t{burst * 10 + k});
        total += (w.sim.now() - t0).as_millis();
        ++writes;
      }
      co_await w.sim.wait(sim::sec(1));
    }
  }(rt, w, total_write_ms, writes));

  w.sim.run_until();

  Outcome out;
  out.mean_write_ms = total_write_ms / writes;
  out.stale_fraction = rt.consistency().stale_fraction();
  out.mean_lag = rt.consistency().mean_version_lag();
  out.bounded_waits = rt.bounded_waits();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A7: the consistency spectrum (blocking -> bounded -> async) ===\n"
            << "(hot item read every 40 ms at 2 edges; writer bursts of 5 updates/s)\n\n";

  mutsvc::stats::TextTable table{{"update protocol", "mean write latency (ms)",
                                  "stale read fraction", "mean version lag", "writer stalls"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, mutsvc::stats::TextTable::cell_fixed(o.mean_write_ms, 1),
                   mutsvc::stats::TextTable::cell_fixed(o.stale_fraction, 4),
                   mutsvc::stats::TextTable::cell_fixed(o.mean_lag, 2),
                   std::to_string(o.bounded_waits)});
  };
  row("blocking push (zero staleness)", run(0));
  row("bounded async, order bound 1", run(1));
  row("bounded async, order bound 4", run(4));
  row("unbounded async (pure 4.5)", run(-1));
  table.print(std::cout);

  std::cout << "\nBlocking push buys zero staleness at ~2 WAN RTTs per write; unbounded\n"
            << "async writes at local latency but lets replicas lag whole bursts\n"
            << "behind; the order-error bound trades between them, exactly the\n"
            << "TACT-style knob §5 suggests exposing in deployment descriptors.\n";
  return 0;
}

// Session-count scaling ladder for the FSM load engine (ISSUE 9).
//
// Part one climbs a standalone-engine ladder (10k -> 100k -> 1M concurrent
// sessions against a fixed-latency executor) and holds every rung to the
// memory budget: the whole fleet resident at once, under 96 bytes of arena
// per session, issuing on the think-time contract. Part two runs the three
// arrival/popularity scenarios through the full experiment harness:
//   - diurnal: session arrivals follow a day-shaped rate envelope and the
//     started-session count tracks the envelope integral;
//   - flash10x: a 10x flash-crowd step in the arrival envelope;
//   - zipf_hot: Zipf-skewed item popularity concentrates data-tier load on
//     the shard holding the hot key (vs a uniform control run).
// Every cell is self-checking (non-zero exit on violation). The scenario
// list runs twice — once inline and once fanned out across the core::sweep
// worker pool — and the per-cell fingerprints must match bit-for-bit, which
// pins "identical across repeat runs and MUTSVC_JOBS values" directly.
//
// MUTSVC_FAST=1 drops the 1M rung (the 100k rung stays, so the CI smoke
// still covers a six-figure fleet). With MUTSVC_BENCH_JSON set, per-cell
// metrics are written benchstat-style; all non-wall metrics deterministic.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "stats/collector.hpp"
#include "tools/perf/perfjson.hpp"
#include "workload/arrivals.hpp"
#include "workload/loadgen.hpp"
#include "workload/session_fsm.hpp"

namespace {

using mutsvc::core::ConfigLevel;
using mutsvc::core::Experiment;
using mutsvc::core::ExperimentSpec;

constexpr double kBytesPerSessionCeiling = 96.0;

bool fast_mode() { return std::getenv("MUTSVC_FAST") != nullptr; }

int g_failures = 0;
void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cout << "FAIL: " << what << "\n";
    ++g_failures;
  } else {
    std::cout << "ok: " << what << "\n";
  }
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

// ---------------------------------------------------------------------------
// Part one: the standalone-engine rung ladder.

class FixedLatencyExecutor final : public mutsvc::workload::RequestExecutor {
 public:
  FixedLatencyExecutor(mutsvc::sim::Simulator& sim, mutsvc::sim::Duration latency)
      : sim_(sim), latency_(latency) {}
  [[nodiscard]] mutsvc::sim::Task<mutsvc::workload::RequestOutcome> execute(
      mutsvc::net::NodeId, const mutsvc::workload::PageRequest&) override {
    co_await sim_.wait(latency_);
    co_return mutsvc::workload::RequestOutcome::kOk;
  }

 private:
  mutsvc::sim::Simulator& sim_;
  mutsvc::sim::Duration latency_;
};

/// Random-walk script (2–4 pages over a 5-page site): enough state to keep
/// the per-record rng stream and scratch words honest at every rung.
class LadderModel final : public mutsvc::workload::FsmScriptModel {
 public:
  std::optional<mutsvc::workload::PageRequest> next(std::uint32_t step,
                                                    mutsvc::workload::FsmScratch& scratch,
                                                    mutsvc::workload::SmallRng& rng) const override {
    if (step == 0) scratch.w0 = static_cast<std::uint64_t>(rng.uniform_int(2, 4));
    if (step >= scratch.w0) return std::nullopt;
    mutsvc::workload::PageRequest req;
    req.page = "Page" + std::to_string(rng.uniform_int(0, 4));
    req.pattern = pattern();
    req.component = "Web";
    req.method = "serve";
    return req;
  }
  [[nodiscard]] const char* pattern() const override { return "Ladder"; }
};

struct RungResult {
  std::size_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  double bytes_per_session = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t digest = 0;
};

RungResult run_rung(std::size_t sessions) {
  mutsvc::sim::Simulator s(1);
  mutsvc::stats::ResponseTimeCollector collector;
  FixedLatencyExecutor exec{s, mutsvc::sim::ms(5)};
  mutsvc::workload::SessionFsmEngine engine{s, exec, collector};
  const std::uint8_t kind = engine.add_kind(std::make_shared<LadderModel>(),
                                            mutsvc::net::NodeId{0},
                                            mutsvc::stats::ClientGroup::kLocal);
  const mutsvc::sim::SimTime end = mutsvc::sim::SimTime::origin() + mutsvc::sim::sec(10);
  mutsvc::perf::WallTimer timer;
  engine.start_population(kind, sessions, end, /*seed=*/77);
  RungResult r;
  r.bytes_per_session =
      static_cast<double>(engine.arena_bytes()) / static_cast<double>(sessions);
  s.run_until(end);
  r.wall_seconds = timer.seconds();
  r.sessions = sessions;
  r.requests = engine.requests_issued();
  r.samples = collector.total_samples();
  r.events = s.executed_events();

  const std::string tag = "rung " + std::to_string(sessions);
  check(engine.peak_live_sessions() == sessions, tag + ": whole fleet resident at once");
  check(r.bytes_per_session <= kBytesPerSessionCeiling,
        tag + ": " + std::to_string(r.bytes_per_session) + " bytes/session within the " +
            std::to_string(static_cast<int>(kBytesPerSessionCeiling)) + "-byte ceiling");
  // 10s window, 7s think, stagger across [0, 7s): every session issues at
  // least once and none can have issued more than twice.
  check(r.requests >= sessions && r.requests <= 2 * sessions,
        tag + ": issue count on the think-time contract");
  check(engine.requests_issued() ==
            engine.requests_completed() + engine.requests_in_flight(),
        tag + ": issued == completed + in-flight");

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, r.requests);
  h = fnv1a(h, r.samples);
  h = fnv1a(h, r.events);
  h = fnv1a(h, engine.sessions_started());
  r.digest = h;
  return r;
}

// ---------------------------------------------------------------------------
// Part two: arrival/popularity scenarios through the experiment harness.

struct CellResult {
  std::string name;
  std::uint64_t fingerprint = 0;
  double headline = 0.0;  // scenario-specific: sessions started or hot share
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  /// Checks are *collected* here, not reported in place: cells run on sweep
  /// worker threads, so they must not touch the global failure counter or
  /// interleave stdout. main() reports the inline pass's checks.
  std::vector<std::pair<bool, std::string>> checks;
};

ExperimentSpec scenario_spec() {
  ExperimentSpec spec;
  spec.level = ConfigLevel::kRemoteFacade;
  spec.duration = mutsvc::sim::sec(240);
  spec.warmup = mutsvc::sim::sec(30);
  spec.seed = 11;
  spec.total_request_rate = 30.0;
  spec.fsm_load.enabled = true;
  return spec;
}

std::uint64_t fold_experiment(std::uint64_t h, Experiment& exp) {
  const auto& r = exp.results();
  h = fnv1a(h, exp.requests_issued());
  h = fnv1a(h, exp.sessions_started());
  h = fnv1a(h, r.total_samples());
  h = fnv1a(h, r.failures());
  h = fnv1a(h, r.rejections());
  h = fnv1a(h, exp.simulator().executed_events());
  h = fnv1a(h, static_cast<std::uint64_t>(
                   r.pattern_mean_ms("Browser", mutsvc::stats::ClientGroup::kLocal) * 1e6));
  return h;
}

/// Arrival-envelope cell shared by diurnal and flash10x: runs the envelope,
/// checks the started-session count against its integral, and checks the
/// end-of-run identities.
CellResult run_envelope_cell(const std::string& name, const mutsvc::workload::RateEnvelope& env,
                             mutsvc::sim::Duration duration) {
  mutsvc::apps::petstore::PetStoreApp app;
  ExperimentSpec spec = scenario_spec();
  spec.duration = duration;
  spec.fsm_load.arrivals = env;
  Experiment exp{app.driver(), spec, mutsvc::core::petstore_calibration()};
  mutsvc::perf::WallTimer timer;
  exp.run();

  CellResult c;
  c.name = name;
  c.wall_seconds = timer.seconds();
  const double expected = env.expected_count(mutsvc::sim::Duration::zero(), duration);
  const auto started = static_cast<double>(exp.sessions_started());
  c.checks.emplace_back(started > expected * 0.85 && started < expected * 1.15,
                        name + ": sessions started (" + std::to_string(exp.sessions_started()) +
                            ") track the envelope integral (" + std::to_string(expected) + ")");
  const auto& r = exp.results();
  c.checks.emplace_back(exp.requests_issued() == r.total_samples() + r.failures() +
                                                     r.rejections() + r.discarded_samples() +
                                                     exp.requests_in_flight(),
                        name + ": request conservation under the end-of-run rule");
  c.checks.emplace_back(exp.fsm_live_sessions() == exp.requests_in_flight(),
                        name + ": truncated run leaves exactly the in-flight tail resident");
  c.headline = started;
  c.samples = r.total_samples();
  c.events = exp.simulator().executed_events();
  c.fingerprint = fold_experiment(0xcbf29ce484222325ULL, exp);
  return c;
}

CellResult run_diurnal_cell() {
  return run_envelope_cell(
      "diurnal", mutsvc::workload::RateEnvelope::diurnal(1.0, 9.0, mutsvc::sim::sec(120)),
      mutsvc::sim::sec(240));
}

CellResult run_flash_cell() {
  return run_envelope_cell("flash10x",
                           mutsvc::workload::RateEnvelope::flash_crowd(
                               1.0, 10.0, mutsvc::sim::sec(60), mutsvc::sim::sec(30)),
                           mutsvc::sim::sec(180));
}

CellResult run_zipf_cell() {
  // Closed-loop all-browser load at the cache-free facade level over four
  // shards; the control run (zipf_s = 0) pins the uniform spread, the
  // skewed run (zipf_s = 2) must make the hot key's shard the clear max.
  struct ShardView {
    double hot_share = 0.0;
    bool hot_is_max = false;
    std::uint64_t samples = 0;
    std::uint64_t events = 0;
    std::uint64_t fold = 0;
  };
  auto run_one = [](double zipf_s) {
    mutsvc::apps::petstore::PetStoreApp app;
    ExperimentSpec spec = scenario_spec();
    spec.duration = mutsvc::sim::sec(120);
    spec.shard.shards = 4;
    spec.browser_fraction = 1.0;
    spec.fsm_load.zipf_s = zipf_s;
    Experiment exp{app.driver(), spec, mutsvc::core::petstore_calibration()};
    exp.run();
    const std::size_t hot = exp.database().router().shard_of(1001001);
    double hot_util = 0.0;
    double total_util = 0.0;
    double max_other = 0.0;
    const auto& db_nodes = exp.nodes().db_nodes;
    for (std::size_t s = 0; s < db_nodes.size(); ++s) {
      const double u = exp.cpu_utilization(db_nodes[s]);
      total_util += u;
      if (s == hot) {
        hot_util = u;
      } else {
        max_other = std::max(max_other, u);
      }
    }
    ShardView v;
    v.hot_share = total_util > 0.0 ? hot_util / total_util : 0.0;
    v.hot_is_max = hot_util > max_other;
    v.samples = exp.results().total_samples();
    v.events = exp.simulator().executed_events();
    v.fold = fold_experiment(fnv1a(0xcbf29ce484222325ULL,
                                   static_cast<std::uint64_t>(v.hot_share * 1e9)),
                             exp);
    return v;
  };

  mutsvc::perf::WallTimer timer;
  const ShardView uniform = run_one(0.0);
  const ShardView skewed = run_one(2.0);
  CellResult c;
  c.checks.emplace_back(uniform.hot_share > 0.24 && uniform.hot_share < 0.26,
                        "zipf_hot: uniform control spreads ~25% per shard (" +
                            std::to_string(uniform.hot_share) + ")");
  c.checks.emplace_back(skewed.hot_share > uniform.hot_share + 0.03,
                        "zipf_hot: skew lifts the hot shard's share (" +
                            std::to_string(uniform.hot_share) + " -> " +
                            std::to_string(skewed.hot_share) + ")");
  c.checks.emplace_back(skewed.hot_is_max,
                        "zipf_hot: the hot key's shard carries the most load");
  c.name = "zipf_hot";
  c.wall_seconds = timer.seconds();
  c.headline = skewed.hot_share;
  c.samples = uniform.samples + skewed.samples;
  c.events = uniform.events + skewed.events;
  c.fingerprint = fnv1a(uniform.fold, skewed.fold);
  return c;
}

}  // namespace

int main() {
  std::cout << "=== bench_scaling_sessions: FSM engine session-count ladder ===\n"
            << (fast_mode() ? "(MUTSVC_FAST smoke run)\n" : "") << "\n";

  std::vector<std::size_t> rungs{10000, 100000};
  if (!fast_mode()) rungs.push_back(1000000);

  std::vector<RungResult> ladder;
  ladder.reserve(rungs.size());
  for (std::size_t n : rungs) {
    ladder.push_back(run_rung(n));
    const RungResult& r = ladder.back();
    std::cout << "  " << n << " sessions: " << r.requests << " requests, " << r.events
              << " events, " << r.bytes_per_session << " bytes/session [" << r.wall_seconds
              << "s wall]\n";
  }
  // Repeat-run determinism on the smallest rung (cheap, same code path).
  check(run_rung(rungs.front()).digest == ladder.front().digest,
        "repeated rung is bit-identical");

  // Scenario cells run twice: inline, then fanned out across the sweep
  // worker pool. Matching fingerprints pin bit-identical results across
  // repeat runs and MUTSVC_JOBS values in one shot.
  const std::vector<std::function<CellResult()>> cells{run_diurnal_cell, run_flash_cell,
                                                       run_zipf_cell};
  std::vector<CellResult> inline_pass;
  inline_pass.reserve(cells.size());
  for (const auto& cell : cells) inline_pass.push_back(cell());

  std::cerr << "scenario re-run: " << cells.size()
            << " cells, jobs=" << mutsvc::core::sweep::configured_jobs() << std::endl;
  std::vector<CellResult> sweep_pass = mutsvc::core::sweep::run_trials(
      std::vector<std::function<CellResult()>>(cells.begin(), cells.end()));

  for (std::size_t i = 0; i < inline_pass.size(); ++i) {
    const CellResult& a = inline_pass[i];
    const CellResult& b = sweep_pass[i];
    std::cout << "  " << a.name << ": headline " << a.headline << ", samples " << a.samples
              << " [" << a.wall_seconds << "s wall]\n";
    for (const auto& [ok, what] : a.checks) check(ok, what);
    check(a.fingerprint == b.fingerprint,
          a.name + ": bit-identical between inline and worker-pool runs");
  }

  const char* path = std::getenv("MUTSVC_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    std::vector<mutsvc::perf::Benchmark> out;
    for (const RungResult& r : ladder) {
      mutsvc::perf::Benchmark b{"sessions." + std::to_string(r.sessions), {}};
      b.add("sessions", static_cast<double>(r.sessions));
      b.add("requests", static_cast<double>(r.requests));
      b.add("samples", static_cast<double>(r.samples));
      b.add("events", static_cast<double>(r.events));
      b.add("bytes_per_session", r.bytes_per_session);
      b.add("wall_seconds", r.wall_seconds);
      b.add("wall_sessions_per_sec",
            r.wall_seconds > 0.0 ? static_cast<double>(r.sessions) / r.wall_seconds : 0.0);
      out.push_back(std::move(b));
    }
    for (const CellResult& c : inline_pass) {
      mutsvc::perf::Benchmark b{"scenario." + c.name, {}};
      b.add("headline", c.headline);
      b.add("samples", static_cast<double>(c.samples));
      b.add("events", static_cast<double>(c.events));
      b.add("wall_seconds", c.wall_seconds);
      out.push_back(std::move(b));
    }
    mutsvc::perf::write_bench_json(path, "scaling_sessions", out);
    std::cerr << "wrote " << path << "\n";
  }

  if (g_failures != 0) {
    std::cout << "\n" << g_failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "\nall checks passed\n";
  return 0;
}

#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/common/driver.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "tools/perf/perfjson.hpp"

namespace mutsvc::bench {

/// Run length control: the default reproduces the paper's methodology —
/// one simulated hour per configuration after a several-minute warm-up
/// (§3.3). MUTSVC_FAST=1 switches to a short smoke run for CI.
inline core::ExperimentSpec base_spec() {
  core::ExperimentSpec spec;
  spec.duration = sim::sec(3600);
  spec.warmup = sim::sec(300);
  if (std::getenv("MUTSVC_FAST") != nullptr) {
    spec.duration = sim::sec(180);
    spec.warmup = sim::sec(30);
  }
  return spec;
}

struct LadderRun {
  std::vector<std::unique_ptr<core::Experiment>> experiments;
  std::vector<core::ConfigResult> results;
  /// Host-side measurements (nondeterministic; excluded from report diffs).
  std::vector<double> rung_wall_seconds;
  double wall_seconds_total = 0.0;
  std::size_t jobs = 1;
};

/// Runs all five configurations of §4 for one application.
///
/// The rungs are fully independent `(spec, seed)` trials — each owns its
/// Simulator, testbed, and collectors — so they fan out across the
/// core::sweep worker pool (MUTSVC_JOBS, default: all cores) and merge in
/// submission order: the printed tables are bit-identical to a serial run
/// at any thread count.
inline LadderRun run_ladder(const apps::AppDriver& driver,
                            const core::HarnessCalibration& cal,
                            const core::ExperimentSpec& base) {
  static constexpr core::ConfigLevel kLevels[] = {
      core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
      core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
      core::ConfigLevel::kAsyncUpdates};

  struct Trial {
    std::unique_ptr<core::Experiment> experiment;
    double wall_seconds = 0.0;
  };

  LadderRun run;
  run.jobs = core::sweep::configured_jobs();
  std::vector<std::function<Trial()>> trials;
  for (core::ConfigLevel level : kLevels) {
    core::ExperimentSpec spec = base;
    spec.level = level;
    std::cerr << "  queued: " << core::to_string(level) << " ("
              << spec.duration.as_seconds() << "s simulated)" << std::endl;
    trials.push_back([spec, &driver, &cal] {
      perf::WallTimer timer;
      auto exp = std::make_unique<core::Experiment>(driver, spec, cal);
      exp->run();
      return Trial{std::move(exp), timer.seconds()};
    });
  }

  perf::WallTimer total;
  std::vector<Trial> done = core::sweep::run_trials(std::move(trials));
  run.wall_seconds_total = total.seconds();
  for (std::size_t i = 0; i < done.size(); ++i) {
    run.results.push_back(core::ConfigResult{kLevels[i], &done[i].experiment->results()});
    run.rung_wall_seconds.push_back(done[i].wall_seconds);
    run.experiments.push_back(std::move(done[i].experiment));
  }
  return run;
}

/// Emits the ladder's perf trajectory (BENCH_ladder.json schema) when
/// MUTSVC_BENCH_JSON names an output path; silent otherwise. Deterministic
/// metrics (executed events) are bit-identical across MUTSVC_JOBS values;
/// `wall_*` metrics are host measurements.
inline void maybe_write_ladder_json(const std::string& app, const LadderRun& run) {
  const char* path = std::getenv("MUTSVC_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;

  std::vector<perf::Benchmark> out;
  double serial_equivalent = 0.0;
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    perf::Benchmark b{"ladder." + app + "." + core::to_string(run.results[i].level), {}};
    const std::uint64_t events = run.experiments[i]->simulator().executed_events();
    b.add("events", static_cast<double>(events));
    b.add("wall_seconds", run.rung_wall_seconds[i]);
    out.push_back(std::move(b));
    serial_equivalent += run.rung_wall_seconds[i];
    total_events += events;
  }
  perf::Benchmark total{"ladder." + app + ".total", {}};
  total.add("events", static_cast<double>(total_events));
  total.add("wall_seconds", run.wall_seconds_total);
  total.add("wall_serial_equivalent_seconds", serial_equivalent);
  total.add("wall_speedup",
            run.wall_seconds_total > 0.0 ? serial_equivalent / run.wall_seconds_total : 0.0);
  total.add("wall_jobs", static_cast<double>(run.jobs));
  total.add("wall_events_per_sec",
            run.wall_seconds_total > 0.0
                ? static_cast<double>(total_events) / run.wall_seconds_total
                : 0.0);
  total.add("wall_peak_rss_bytes", static_cast<double>(perf::peak_rss_bytes()));
  out.push_back(std::move(total));
  perf::write_bench_json(path, "ladder." + app, out);
  std::cerr << "  wrote " << path << " (jobs=" << run.jobs << ", speedup="
            << (run.wall_seconds_total > 0.0 ? serial_equivalent / run.wall_seconds_total : 0.0)
            << "x)\n";
}

inline void print_utilization(std::ostream& os, core::Experiment& exp) {
  const auto& n = exp.nodes();
  os << "  CPU utilization: main " << static_cast<int>(exp.cpu_utilization(n.main_server) * 100)
     << "%, edge1 " << static_cast<int>(exp.cpu_utilization(n.edge_servers[0]) * 100)
     << "%, edge2 " << static_cast<int>(exp.cpu_utilization(n.edge_servers[1]) * 100) << "%";
  if (n.db_node != n.main_server) {
    os << ", db " << static_cast<int>(exp.cpu_utilization(n.db_node) * 100) << "%";
  }
  os << "\n";
}

}  // namespace mutsvc::bench

#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/common/driver.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

namespace mutsvc::bench {

/// Run length control: the default reproduces the paper's methodology —
/// one simulated hour per configuration after a several-minute warm-up
/// (§3.3). MUTSVC_FAST=1 switches to a short smoke run for CI.
inline core::ExperimentSpec base_spec() {
  core::ExperimentSpec spec;
  spec.duration = sim::sec(3600);
  spec.warmup = sim::sec(300);
  if (std::getenv("MUTSVC_FAST") != nullptr) {
    spec.duration = sim::sec(180);
    spec.warmup = sim::sec(30);
  }
  return spec;
}

struct LadderRun {
  std::vector<std::unique_ptr<core::Experiment>> experiments;
  std::vector<core::ConfigResult> results;
};

/// Runs all five configurations of §4 for one application.
inline LadderRun run_ladder(const apps::AppDriver& driver,
                            const core::HarnessCalibration& cal,
                            const core::ExperimentSpec& base) {
  LadderRun run;
  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    core::ExperimentSpec spec = base;
    spec.level = level;
    auto exp = std::make_unique<core::Experiment>(driver, spec, cal);
    std::cerr << "  running: " << core::to_string(level) << " ("
              << spec.duration.as_seconds() << "s simulated)..." << std::endl;
    exp->run();
    run.results.push_back(core::ConfigResult{level, &exp->results()});
    run.experiments.push_back(std::move(exp));
  }
  return run;
}

inline void print_utilization(std::ostream& os, core::Experiment& exp) {
  const auto& n = exp.nodes();
  os << "  CPU utilization: main " << static_cast<int>(exp.cpu_utilization(n.main_server) * 100)
     << "%, edge1 " << static_cast<int>(exp.cpu_utilization(n.edge_servers[0]) * 100)
     << "%, edge2 " << static_cast<int>(exp.cpu_utilization(n.edge_servers[1]) * 100) << "%";
  if (n.db_node != n.main_server) {
    os << ", db " << static_cast<int>(exp.cpu_utilization(n.db_node) * 100) << "%";
  }
  os << "\n";
}

}  // namespace mutsvc::bench

// Ablation A7 (robustness): message loss x resilience policy. Sweeps a
// per-link loss probability over a Pet Store run that also crash-restarts
// one edge server mid-run, and compares the middleware resilience layer
// (RMI retry/timeout/circuit breaker + degraded edge reads + queued writes)
// against the seed behavior (single attempt, failover only).
#include <functional>
#include <iostream>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

struct Outcome {
  double success = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t dropped = 0;
  std::uint64_t failovers = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_rejections = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t queued_writes = 0;
  double remote_browser_ms = 0.0;
};

core::ExperimentSpec spec_for(double loss, bool resilient, net::NodeId edge,
                              std::uint64_t seed) {
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(900);
  spec.warmup = sim::sec(120);
  spec.seed = seed;
  spec.fault_plan.loss_prob = loss;
  // One edge server crashes a third of the way in and restarts cold two
  // minutes later (caches re-warmed through the runtime's restart hook).
  spec.fault_plan.crashes.push_back(net::FaultPlan::NodeCrash{edge, sim::sec(300), sim::sec(120)});
  spec.resilience.enabled = resilient;
  return spec;
}

net::NodeId probe_edge_node() {
  // Testbed construction is deterministic: learn the edge's NodeId from a
  // throwaway instance so the FaultPlan can reference it.
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  core::Experiment probe{app.driver(), spec, core::petstore_calibration()};
  return probe.nodes().edge_servers[0];
}

Outcome run(double loss, bool resilient, net::NodeId edge, std::uint64_t seed = 42) {
  apps::petstore::PetStoreApp app;
  core::Experiment exp{app.driver(), spec_for(loss, resilient, edge, seed),
                       core::petstore_calibration()};
  exp.run();

  Outcome o;
  o.success = exp.results().success_fraction();
  o.failures = exp.results().failures();
  o.dropped = exp.dropped_requests();
  o.failovers = exp.failovers();
  o.lost = exp.network().messages_lost();
  o.retries = exp.rmi().retries();
  o.timeouts = exp.rmi().timeouts();
  o.breaker_opens = exp.rmi().breaker_opens();
  o.breaker_rejections = exp.rmi().breaker_rejections();
  o.degraded_reads = exp.runtime().degraded_reads();
  o.queued_writes = exp.runtime().queued_writes();
  o.remote_browser_ms = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  return o;
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A7: message loss x resilience policy ===\n"
            << "(Pet Store, async-updates configuration, 15-minute run; one edge\n"
            << " server crash-restarts at minute 5 for 2 minutes in every cell)\n\n";

  const net::NodeId edge = probe_edge_node();
  const double losses[] = {0.0, 0.005, 0.02, 0.05};

  // Every cell is an isolated (spec, seed) trial; fan the whole grid — plus
  // the determinism pair — across the core::sweep worker pool. Results merge
  // in submission order, so the table is identical to the serial loop.
  struct Cell {
    double loss;
    bool resilient;
  };
  std::vector<Cell> cells;
  std::vector<std::function<Outcome()>> trials;
  for (double loss : losses) {
    for (bool resilient : {false, true}) {
      cells.push_back(Cell{loss, resilient});
      trials.push_back([loss, resilient, edge] { return run(loss, resilient, edge); });
    }
  }
  // Determinism spot check: the 2% resilient cell, twice with the same seed.
  trials.push_back([edge] { return run(0.02, true, edge, 7); });
  trials.push_back([edge] { return run(0.02, true, edge, 7); });

  std::vector<Outcome> outcomes = core::sweep::run_trials(std::move(trials));

  stats::TextTable table{{"loss/link", "resilience", "success", "failed pages", "failovers",
                          "msgs lost", "RMI retries", "timeouts", "breaker open/rej",
                          "degraded reads", "queued writes", "remote browser mean (ms)"}};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Outcome& o = outcomes[i];
    table.add_row({pct(cells[i].loss), cells[i].resilient ? "on" : "off", pct(o.success),
                   std::to_string(o.failures), std::to_string(o.failovers),
                   std::to_string(o.lost), std::to_string(o.retries),
                   std::to_string(o.timeouts),
                   std::to_string(o.breaker_opens) + "/" + std::to_string(o.breaker_rejections),
                   std::to_string(o.degraded_reads), std::to_string(o.queued_writes),
                   stats::TextTable::cell_ms(o.remote_browser_ms)});
  }
  table.print(std::cout);

  const Outcome& a = outcomes[cells.size()];
  const Outcome& b = outcomes[cells.size() + 1];
  const bool identical = a.failures == b.failures && a.lost == b.lost &&
                         a.retries == b.retries && a.degraded_reads == b.degraded_reads &&
                         a.success == b.success && a.remote_browser_ms == b.remote_browser_ms;
  std::cout << "\nDeterminism (2% loss, resilience on, seed 7, two runs): "
            << (identical ? "identical" : "DIVERGED") << "\n";

  std::cout << "\nWith the policy off, every lost RMI message fails the whole page and\n"
            << "loss compounds per hop; the success rate collapses as loss grows. With\n"
            << "it on, per-call timeouts and retries absorb transient loss, the circuit\n"
            << "breaker turns a dead master into fast local failures, and the edges\n"
            << "keep serving bounded-stale reads and queueing writes until redelivery.\n";
  return identical ? 0 : 1;
}

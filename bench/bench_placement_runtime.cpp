// Runtime-placement diurnal bench (ISSUE 10): antiphase day/night session
// envelopes on the two remote sites, so the *optimal* static placement of the
// catalog replica set flips every half period. Four cells:
//   - static_e0 / static_e1: the replica set pinned at one edge — each is
//     optimal for half the day and pays WAN reads for the other half;
//   - static_both: the full ladder rung (replicas at every edge) — the
//     provisioning upper bound the controller is *not* expected to beat;
//   - dynamic: replica set starts at edge0 and the PlacementController
//     (EdgeShiftPolicy over entry-page shares, staged canary rollout)
//     migrates it to follow the sun.
// Self-checking:
//   - the controller follows the envelope: >= 2 completed migrations and
//     >= 2 binding flips over two diurnal periods;
//   - dynamic SLO attainment beats the best single-site static placement;
//   - every cell conserves requests under the end-of-run rule;
//   - determinism: a repeated dynamic cell produces a bit-identical digest
//     (samples, events, response stream, and the controller action log).
// Cells fan out across the core::sweep pool and merge in submission order,
// so stdout and the JSON are bit-identical at any MUTSVC_JOBS value. With
// MUTSVC_BENCH_JSON set, writes per-cell metrics (BENCH_placement.json);
// every non-wall metric is deterministic.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "component/controller.hpp"
#include "component/deployment.hpp"
#include "core/calibration.hpp"
#include "core/design_rules.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "tools/perf/perfjson.hpp"
#include "workload/arrivals.hpp"

namespace {

using mutsvc::core::ConfigLevel;
using mutsvc::core::Experiment;
using mutsvc::core::ExperimentSpec;
using mutsvc::workload::RateEnvelope;

// A page slower than this is not within the SLO. Sits between the
// local-replica page cost and the WAN-read page cost at the async rung, so
// attainment directly measures "was the replica set where the traffic was".
constexpr double kSloMs = 250.0;

struct Scenario {
  mutsvc::sim::Duration duration;
  mutsvc::sim::Duration warmup;
  mutsvc::sim::Duration period;  // diurnal period (two full cycles per run)
};

struct Cell {
  std::string name;
  int holder = -1;      // replica-set edge (-1 = full ladder, every edge)
  bool dynamic = false;  // install the placement controller
};

struct CellResult {
  Cell cell;
  std::uint64_t samples = 0;
  std::uint64_t failures = 0;
  std::uint64_t events = 0;
  std::uint64_t good = 0;  // samples within the SLO
  double slo_fraction = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t flips = 0;
  bool conserved = false;
  double wall_seconds = 0.0;
  std::uint64_t digest = 0;  // FNV-1a over the deterministic outcome
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

CellResult run_cell(const Cell& cell, const Scenario& sc) {
  mutsvc::apps::petstore::PetStoreApp app;
  mutsvc::apps::AppDriver driver = app.driver();

  ExperimentSpec spec;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.duration = sc.duration;
  spec.warmup = sc.warmup;
  spec.seed = 0xD1;

  // Antiphase diurnal session envelopes: remote site 0 peaks at the start
  // of each period (so every cell begins with the replica set where the
  // traffic is), remote site 1 half a period later; the local group is
  // flat background.
  const RateEnvelope day = RateEnvelope::diurnal(0.05, 1.2, sc.period);
  spec.fsm_load.enabled = true;
  spec.fsm_load.group_arrivals = {RateEnvelope::constant(0.1),
                                  day.shifted(sc.period * 0.5), day};

  const int start_holder = cell.holder < 0 ? 0 : cell.holder;
  if (cell.holder >= 0 || cell.dynamic) {
    // The ladder rung with the migratable replica set (read-mostly entities
    // + edge query cache) stripped down to a single holder edge; the other
    // edge keeps its facades but pays WAN reads.
    spec.custom_plan = [&driver, start_holder](const mutsvc::core::TestbedNodes& nodes) {
      mutsvc::comp::DeploymentPlan plan = mutsvc::core::build_plan(
          *driver.app, *driver.meta, nodes, ConfigLevel::kAsyncUpdates);
      const mutsvc::net::NodeId other = nodes.edge_servers[1 - start_holder];
      for (const std::string& entity : driver.meta->read_mostly) {
        plan.remove_ro_replica(entity, other);
      }
      plan.remove_query_cache(other);
      return plan;
    };
  }
  if (cell.dynamic) {
    spec.placement.enabled = true;
    spec.placement.quantum = mutsvc::sim::sec(10);
    spec.placement.policy = [] {
      mutsvc::comp::EdgeShiftPolicy::Config cfg;
      cfg.high_share = 0.55;
      cfg.low_share = 0.45;
      cfg.confirm_quanta = 2;
      return std::make_unique<mutsvc::comp::EdgeShiftPolicy>(cfg);
    };
    spec.placement.canary_fraction = 0.25;  // staged rollout by session share
    spec.placement.components = driver.meta->edge_facades;
    spec.placement.entities = driver.meta->read_mostly;
    spec.placement.move_query_cache = true;
  }

  mutsvc::perf::WallTimer timer;
  Experiment exp{driver, spec, mutsvc::core::petstore_calibration()};
  std::vector<double> responses_ms;
  exp.set_response_observer([&responses_ms](double ms) { responses_ms.push_back(ms); });
  exp.run();

  CellResult r;
  r.cell = cell;
  r.wall_seconds = timer.seconds();
  const auto& res = exp.results();
  r.samples = res.total_samples();
  r.failures = res.failures();
  r.events = exp.simulator().executed_events();
  double sum_ms = 0.0;
  for (double ms : responses_ms) {
    sum_ms += ms;
    if (ms <= kSloMs) ++r.good;
  }
  if (!responses_ms.empty()) {
    r.slo_fraction = static_cast<double>(r.good) / static_cast<double>(responses_ms.size());
    r.mean_ms = sum_ms / static_cast<double>(responses_ms.size());
    std::vector<double> sorted = responses_ms;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size()));
    r.p99_ms = sorted[std::min(rank, sorted.size() - 1)];
  }
  if (const mutsvc::comp::PlacementController* pc = exp.placement_controller()) {
    r.migrations = pc->migrations_completed();
  }
  if (exp.bindings() != nullptr) r.flips = exp.bindings()->flips();
  r.conserved = exp.requests_issued() == res.total_samples() + res.failures() +
                                             res.discarded_samples() + exp.requests_in_flight();

  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, r.samples);
  h = fnv1a(h, r.failures);
  h = fnv1a(h, r.events);
  h = fnv1a(h, r.good);
  h = fnv1a(h, r.migrations);
  h = fnv1a(h, r.flips);
  for (double ms : responses_ms) {
    h = fnv1a(h, static_cast<std::uint64_t>(ms * 1000.0));
  }
  if (const mutsvc::comp::PlacementController* pc = exp.placement_controller()) {
    for (const auto& rec : pc->actions()) {
      h = fnv1a(h, static_cast<std::uint64_t>(rec.at.count_micros()));
      h = fnv1a(h, rec.action.from.value());
      h = fnv1a(h, rec.action.to.value());
      h = fnv1a(h, rec.completed ? 1 : 0);
      h = fnv1a(h, rec.binding_version);
    }
  }
  r.digest = h;
  return r;
}

}  // namespace

int main() {
  // The quiesce/canary/forward-epoch cycle needs tens of seconds of sim
  // time per flip, so MUTSVC_FAST trims the run to 1.5 diurnal periods
  // rather than shrinking the period itself (the cells are cheap: the whole
  // sweep is well under a second of wall time either way).
  Scenario sc;
  sc.period = mutsvc::sim::sec(300);
  if (std::getenv("MUTSVC_FAST") != nullptr) {
    sc.duration = mutsvc::sim::sec(480);
    sc.warmup = mutsvc::sim::sec(30);
  } else {
    sc.duration = mutsvc::sim::sec(660);
    sc.warmup = mutsvc::sim::sec(60);
  }

  const std::vector<Cell> cells{
      {"static_e0", 0, false},      {"static_e1", 1, false}, {"static_both", -1, false},
      {"dynamic", 0, true},         {"dynamic_repeat", 0, true},
  };
  std::vector<std::function<CellResult()>> trials;
  trials.reserve(cells.size());
  for (const Cell& c : cells) {
    trials.push_back([c, &sc] { return run_cell(c, sc); });
  }
  std::cerr << "placement-runtime sweep: " << trials.size()
            << " cells, jobs=" << mutsvc::core::sweep::configured_jobs() << std::endl;
  std::vector<CellResult> results = mutsvc::core::sweep::run_trials(std::move(trials));

  auto find = [&results](const std::string& name) -> const CellResult& {
    for (const CellResult& r : results) {
      if (r.cell.name == name) return r;
    }
    throw std::logic_error("missing cell " + name);
  };

  std::cout << "Runtime placement, antiphase diurnal envelopes (PetStore async rung, SLO "
            << kSloMs << "ms):\n";
  for (const CellResult& r : results) {
    std::cout << "  " << r.cell.name << ": slo " << r.slo_fraction << " mean " << r.mean_ms
              << "ms p99 " << r.p99_ms << "ms samples " << r.samples << " failures "
              << r.failures << " migrations " << r.migrations << " flips " << r.flips << " ["
              << r.wall_seconds << "s wall]\n";
  }

  int rc = 0;
  auto check = [&rc](bool ok, const std::string& what) {
    if (!ok) {
      std::cout << "FAIL: " << what << "\n";
      rc = 1;
    } else {
      std::cout << "ok: " << what << "\n";
    }
  };

  const CellResult& dyn = find("dynamic");
  const CellResult& e0 = find("static_e0");
  const CellResult& e1 = find("static_e1");
  check(dyn.migrations >= 2 && dyn.flips >= 2,
        "controller follows the sun: >= 2 completed migrations (" +
            std::to_string(dyn.migrations) + ") and flips (" + std::to_string(dyn.flips) + ")");
  check(e0.migrations == 0 && e1.migrations == 0 && find("static_both").migrations == 0,
        "static cells never migrate");
  check(dyn.slo_fraction > std::max(e0.slo_fraction, e1.slo_fraction),
        "dynamic SLO attainment (" + std::to_string(dyn.slo_fraction) +
            ") beats the best single-site static placement (" +
            std::to_string(std::max(e0.slo_fraction, e1.slo_fraction)) + ")");
  for (const CellResult& r : results) {
    check(r.conserved, r.cell.name + ": request conservation under the end-of-run rule");
  }
  check(find("dynamic_repeat").digest == dyn.digest,
        "repeated dynamic cell is bit-identical (determinism)");

  const char* path = std::getenv("MUTSVC_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    std::vector<mutsvc::perf::Benchmark> out;
    for (const CellResult& r : results) {
      mutsvc::perf::Benchmark b{"placement." + r.cell.name, {}};
      b.add("events", static_cast<double>(r.events));
      b.add("samples", static_cast<double>(r.samples));
      b.add("failures", static_cast<double>(r.failures));
      b.add("good_samples", static_cast<double>(r.good));
      b.add("slo_fraction", r.slo_fraction);
      b.add("mean_ms", r.mean_ms);
      b.add("p99_ms", r.p99_ms);
      b.add("migrations", static_cast<double>(r.migrations));
      b.add("flips", static_cast<double>(r.flips));
      b.add("wall_seconds", r.wall_seconds);
      out.push_back(std::move(b));
    }
    mutsvc::perf::write_bench_json(path, "placement_runtime", out);
    std::cerr << "wrote " << path << "\n";
  }
  return rc;
}

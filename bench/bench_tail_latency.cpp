// Tail latency T1: the paper reports only means (Tables 6/7); means hide
// the *shape* of each configuration's distribution. Blocking push makes the
// writer distribution bimodal (local commit vs commit + 2 WAN pushes);
// query caching makes the browser distribution bimodal during warm-up
// (hit vs miss). Percentiles expose both.
#include <iostream>

#include "apps/rubis/rubis.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== T1: response-time percentiles (ms), RUBiS remote clients ===\n\n";

  apps::rubis::RubisApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::rubis_calibration();

  stats::TextTable browser{{"configuration", "p50", "p90", "p99", "max", "mean"}};
  stats::TextTable bidder{{"configuration", "p50", "p90", "p99", "max", "mean"}};

  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    core::ExperimentSpec spec = bench::base_spec();
    spec.level = level;
    core::Experiment exp{driver, spec, cal};
    exp.run();

    auto add = [&](stats::TextTable& table, const char* pattern) {
      const stats::Summary* s =
          exp.results().pattern_summary(pattern, stats::ClientGroup::kRemote);
      if (s == nullptr || s->empty()) return;
      table.add_row({core::to_string(level), stats::TextTable::cell_ms(s->percentile(50)),
                     stats::TextTable::cell_ms(s->percentile(90)),
                     stats::TextTable::cell_ms(s->percentile(99)),
                     stats::TextTable::cell_ms(s->max()),
                     stats::TextTable::cell_ms(s->mean())});
    };
    add(browser, "Browser");
    add(bidder, "Bidder");
  }

  std::cout << "Remote Browser:\n";
  browser.print(std::cout);
  std::cout << "\nRemote Bidder:\n";
  bidder.print(std::cout);

  std::cout << "\nReading the tails: in the cached configurations the browser's p50 is\n"
            << "local but the p99 still shows the residual WAN work (cold entries,\n"
            << "uncacheable pages); the bidder's distribution under blocking push is\n"
            << "bimodal — browse-form pages at local speed, Store pages at p90+ paying\n"
            << "the full push — which the mean alone understates. Async updates pull\n"
            << "the whole bidder distribution back to one mode plus a single WAN write.\n";
  return 0;
}

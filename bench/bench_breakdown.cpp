// Breakdown B1: where the milliseconds go. Issues single traced requests
// (no background load) for three emblematic Pet Store pages under each
// configuration and prints the per-category time decomposition — the
// quantitative version of the paper's §4 narrative.
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

workload::PageRequest make_request(const char* page, const char* pattern, const char* method,
                                   std::vector<db::Value> args) {
  workload::PageRequest req;
  req.page = page;
  req.pattern = pattern;
  req.component = "PetStoreWeb";
  req.method = method;
  req.args = std::move(args);
  return req;
}

void breakdown_for(core::ConfigLevel level) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(1);  // no background load; we drive requests by hand
  spec.warmup = sim::Duration::zero();
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};

  const net::NodeId remote = exp.nodes().remote_clients[0];
  const std::vector<workload::PageRequest> pages = {
      make_request("Item", "Browser", "item", {db::Value{std::int64_t{1001001}}}),
      make_request("Category", "Browser", "category", {db::Value{std::int64_t{1}}}),
      make_request("Commit Order", "Buyer", "commitorder",
                   {db::Value{std::int64_t{1}}, db::Value{std::int64_t{1001001}}}),
  };

  std::cout << "--- " << core::to_string(level) << " (remote client, warm caches) ---\n";
  stats::TextTable table{{"page", "total", "http", "queue", "cpu", "container", "cache",
                          "jdbc", "rmi", "stub", "lock", "push", "publish"}};

  for (const auto& req : pages) {
    // Warm pass fills replicas/caches and stubs; the second pass is traced.
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r) -> sim::Task<void> {
      comp::TraceSink warm;
      co_await e.execute_traced(c, r, warm);
    }(exp, remote, req));
    exp.simulator().run_until();

    comp::TraceSink sink;
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r,
                             comp::TraceSink& s) -> sim::Task<void> {
      co_await e.execute_traced(c, r, s);
    }(exp, remote, req, sink));
    exp.simulator().run_until();

    auto cell = [&](comp::SpanKind k) {
      return stats::TextTable::cell_fixed(sink.total(k).as_millis(), 1);
    };
    table.add_row({req.page, stats::TextTable::cell_fixed(sink.sum().as_millis(), 1),
                   cell(comp::SpanKind::kHttpWire), cell(comp::SpanKind::kQueueing),
                   cell(comp::SpanKind::kCpu), cell(comp::SpanKind::kLatency),
                   cell(comp::SpanKind::kCacheRead), cell(comp::SpanKind::kJdbc),
                   cell(comp::SpanKind::kRmiWire), cell(comp::SpanKind::kStub),
                   cell(comp::SpanKind::kLockWait), cell(comp::SpanKind::kPush),
                   cell(comp::SpanKind::kPublish)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Breakdown B1: per-category time decomposition (ms), Pet Store ===\n\n";
  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    breakdown_for(level);
  }
  std::cout << "Reading: in the centralized rows the time is http-wire (the 2 WAN round\n"
            << "trips); the façade rung moves it into rmi-wire; component/query caching\n"
            << "eliminate it for Item/Category (all that remains is container residence);\n"
            << "Commit's cost lives in 'push' under blocking propagation and vanishes\n"
            << "into 'publish' under asynchronous updates.\n";
  return 0;
}

// Breakdown B1: where the milliseconds go. Issues single traced requests
// (no background load) for three emblematic Pet Store pages under each
// configuration and prints the per-category time decomposition — the
// quantitative version of the paper's §4 narrative.
//
// Doubles as the trace-conformance check: for every traced page the flat
// category totals must sum to the measured response time EXACTLY (the spans
// are exclusive and additive by construction), and the Commit page under
// blocking push must show the two sequential wide-area pushes as distinct
// child spans. Any violation exits non-zero.
//
// Set MUTSVC_TRACE_JSON=<path> to also dump the traced requests as a
// Chrome-trace-event file (load in chrome://tracing or Perfetto).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/chrome_trace.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

int g_conformance_failures = 0;

workload::PageRequest make_request(const char* page, const char* pattern, const char* method,
                                   std::vector<db::Value> args) {
  workload::PageRequest req;
  req.page = page;
  req.pattern = pattern;
  req.component = "PetStoreWeb";
  req.method = method;
  req.args = std::move(args);
  return req;
}

std::size_t push_child_spans(const comp::TraceSink& sink) {
  // Per-edge children under the push umbrella carry a "push:<edge>" label;
  // the umbrella span itself is labeled plain "push".
  std::size_t n = 0;
  for (const auto& s : sink.spans()) {
    if (s.kind == comp::SpanKind::kPush && s.parent != 0 &&
        s.label.rfind("push:", 0) == 0) {
      ++n;
    }
  }
  return n;
}

void breakdown_for(core::ConfigLevel level, stats::ChromeTraceWriter* chrome) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = level;
  spec.duration = sim::sec(1);  // no background load; we drive requests by hand
  spec.warmup = sim::Duration::zero();
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};

  const net::NodeId remote = exp.nodes().remote_clients[0];
  const std::vector<workload::PageRequest> pages = {
      make_request("Item", "Browser", "item", {db::Value{std::int64_t{1001001}}}),
      make_request("Category", "Browser", "category", {db::Value{std::int64_t{1}}}),
      make_request("Commit Order", "Buyer", "commitorder",
                   {db::Value{std::int64_t{1}}, db::Value{std::int64_t{1001001}}}),
  };

  std::cout << "--- " << core::to_string(level) << " (remote client, warm caches) ---\n";
  stats::TextTable table{{"page", "total", "http", "queue", "cpu", "container", "cache",
                          "jdbc", "rmi", "stub", "lock", "push", "publish"}};

  for (const auto& req : pages) {
    // Warm pass fills replicas/caches and stubs; the second pass is traced.
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r) -> sim::Task<void> {
      comp::TraceSink warm;
      co_await e.execute_traced(c, r, warm);
    }(exp, remote, req));
    exp.simulator().run_until();

    // The warm pass is measurement setup, not workload: drop its cache
    // counters so any metrics readout reflects the measured pass only.
    exp.runtime().reset_cache_stats();

    comp::TraceSink sink;
    sim::Duration elapsed = sim::Duration::zero();
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r, comp::TraceSink& s,
                             sim::Duration& out) -> sim::Task<void> {
      const sim::SimTime t0 = e.simulator().now();
      co_await e.execute_traced(c, r, s);
      out = e.simulator().now() - t0;
    }(exp, remote, req, sink, elapsed));
    exp.simulator().run_until();

    if (!sink.conforms(elapsed)) {
      ++g_conformance_failures;
      std::cout << "CONFORMANCE FAIL: " << core::to_string(level) << " / " << req.page
                << ": sum(spans)=" << sink.sum().as_millis()
                << "ms != measured " << elapsed.as_millis() << "ms\n";
    }
    if (sink.open_span_count() != 0) {
      ++g_conformance_failures;
      std::cout << "CONFORMANCE FAIL: " << core::to_string(level) << " / " << req.page
                << ": " << sink.open_span_count() << " span(s) left open\n";
    }
    // Blocking push propagates to both edge replicas in sequence; the trace
    // tree must show them as two distinct child spans of the push umbrella.
    const bool blocking_push = level == core::ConfigLevel::kStatefulComponentCaching ||
                               level == core::ConfigLevel::kQueryCaching;
    if (blocking_push && req.page == std::string{"Commit Order"} &&
        push_child_spans(sink) != 2) {
      ++g_conformance_failures;
      std::cout << "CONFORMANCE FAIL: " << core::to_string(level)
                << " / Commit Order: expected 2 push child spans, got "
                << push_child_spans(sink) << "\n";
    }
    if (chrome != nullptr) {
      (void)chrome->offer(sink, std::string{core::to_string(level)} + "/" + req.page);
    }

    auto cell = [&](comp::SpanKind k) {
      return stats::TextTable::cell_fixed(sink.total(k).as_millis(), 1);
    };
    table.add_row({req.page, stats::TextTable::cell_fixed(sink.sum().as_millis(), 1),
                   cell(comp::SpanKind::kHttpWire), cell(comp::SpanKind::kQueueing),
                   cell(comp::SpanKind::kCpu), cell(comp::SpanKind::kLatency),
                   cell(comp::SpanKind::kCacheRead), cell(comp::SpanKind::kJdbc),
                   cell(comp::SpanKind::kRmiWire), cell(comp::SpanKind::kStub),
                   cell(comp::SpanKind::kLockWait), cell(comp::SpanKind::kPush),
                   cell(comp::SpanKind::kPublish)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Breakdown B1: per-category time decomposition (ms), Pet Store ===\n\n";
  const char* json_path = std::getenv("MUTSVC_TRACE_JSON");
  stats::ChromeTraceWriter chrome;  // sample every trace: 15 in total
  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    breakdown_for(level, json_path != nullptr ? &chrome : nullptr);
  }
  if (json_path != nullptr) {
    std::ofstream out{json_path};
    chrome.write(out);
    std::cout << "Chrome trace (" << chrome.recorded() << " traces) written to " << json_path
              << "\n\n";
  }
  std::cout << "Reading: in the centralized rows the time is http-wire (the 2 WAN round\n"
            << "trips); the façade rung moves it into rmi-wire; component/query caching\n"
            << "eliminate it for Item/Category (all that remains is container residence);\n"
            << "Commit's cost lives in 'push' under blocking propagation and vanishes\n"
            << "into 'publish' under asynchronous updates.\n";
  if (g_conformance_failures != 0) {
    std::cout << "\nTRACE CONFORMANCE: " << g_conformance_failures << " failure(s)\n";
    return 1;
  }
  std::cout << "\nTRACE CONFORMANCE: all 15 traced pages sum exactly to their measured "
               "response times\n";
  return 0;
}

// Ablation A6 (§1's availability motivation): "client requests can utilize
// several entry points into the service". Crashes one edge server for the
// middle third of a Pet Store run and compares: no failure, failure with
// entry-point failover to the main server, failure without failover.
#include <iostream>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

struct Outcome {
  double remote_browser_ms = 0.0;
  std::uint64_t failovers = 0;
  std::uint64_t dropped = 0;
  std::uint64_t jms_retries = 0;
};

Outcome run(bool inject_failure, bool failover, std::vector<double>* series = nullptr) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.duration = sim::sec(1800);
  spec.warmup = sim::sec(120);
  spec.failover_enabled = failover;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  if (series != nullptr) exp.enable_timeseries(sim::sec(120));

  if (inject_failure) {
    net::Topology& topo = exp.network().topology();
    const net::NodeId edge = exp.nodes().edge_servers[0];
    exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(600),
                                [&topo, edge] { topo.set_node_state(edge, false); });
    exp.simulator().schedule_at(sim::SimTime::origin() + sim::sec(1200),
                                [&topo, edge] { topo.set_node_state(edge, true); });
  }
  exp.run();

  Outcome out;
  out.remote_browser_ms =
      exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  out.failovers = exp.failovers();
  out.dropped = exp.dropped_requests();
  if (exp.runtime().update_topic() != nullptr) {
    out.jms_retries = exp.runtime().update_topic()->delivery_retries();
  }
  if (series != nullptr) {
    const stats::TimeSeries* ts = exp.results().timeseries(stats::ClientGroup::kRemote);
    if (ts != nullptr) *series = ts->window_means();
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A6: edge-server failure and entry-point failover ===\n"
            << "(Pet Store, async-updates configuration; edge-as-1 is down for the\n"
            << " middle 10 minutes of a 30-minute run)\n\n";

  Outcome healthy = run(false, true);
  std::vector<double> timeline;
  Outcome with_failover = run(true, true, &timeline);
  Outcome without_failover = run(true, false);

  stats::TextTable table{{"scenario", "remote browser mean (ms)", "failovers",
                          "dropped requests", "JMS redelivery retries"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, stats::TextTable::cell_ms(o.remote_browser_ms),
                   std::to_string(o.failovers), std::to_string(o.dropped),
                   std::to_string(o.jms_retries)});
  };
  row("no failure", healthy);
  row("edge crash, failover on", with_failover);
  row("edge crash, failover off", without_failover);
  table.print(std::cout);

  std::cout << "\nRemote-group mean per 2-minute window (failover run; the outage spans\n"
            << "minutes 10-20, and the affected group's means include the 2s connect\n"
            << "timeouts its requests pay before failing over):\n  ";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    std::cout << "[" << i * 2 << "m] " << stats::TextTable::cell_ms(timeline[i]) << "  ";
  }
  std::cout << "\n";

  std::cout << "\nWith failover, the affected client group degrades to centralized-like\n"
            << "latency during the outage but loses no requests; without it, every\n"
            << "request of that group is dropped for ten minutes. The JMS provider\n"
            << "queues updates for the dead edge and redelivers on recovery —\n"
            << "the replicas converge instead of serving stale state forever.\n";
  return 0;
}

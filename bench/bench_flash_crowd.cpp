// Flash-crowd overload bench (ISSUE 6): open-loop Poisson arrivals swept
// from 1x to 10x the calibrated capacity, with overload protection off and
// on. Self-checking:
//   - protected: goodput at 10x stays within 90% of the protected 1x cell,
//     and admitted-page p99 stays bounded (the service keeps its SLO by
//     shedding at the door instead of collapsing in the queues);
//   - unprotected: goodput at 10x collapses below half the 1x cell
//     (congestion collapse — the failure mode the protection exists for);
//   - determinism: a repeated protected 10x cell produces a bit-identical
//     digest (same samples, counters, and event count).
// Cells are independent (spec, seed) trials fanned out across the
// core::sweep worker pool; results merge in submission order, so stdout
// and the JSON are bit-identical at any MUTSVC_JOBS value. With
// MUTSVC_BENCH_JSON set, writes per-cell metrics (BENCH_flash_crowd.json);
// every non-wall metric is deterministic.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "bench/table_common.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "net/flowcontrol.hpp"
#include "tools/perf/perfjson.hpp"

namespace {

using mutsvc::core::ConfigLevel;
using mutsvc::core::Experiment;
using mutsvc::core::ExperimentSpec;

// 1x is the planned operating point. The paper's testbed was provisioned so
// thread pools were never the bottleneck (24 threads/node); a flash crowd is
// exactly the regime where that stops being true, so the sweep models a
// modestly-provisioned deployment (kThreadsPerNode below) whose per-node
// capacity is ~85 req/s — 10x offered load is >2x past capacity, and the
// unprotected open-loop backlog grows without bound.
constexpr double kBaseRate = 60.0;     // planned load, req/s (3 client groups)
constexpr double kSloMs = 2000.0;      // a page slower than this is not goodput
constexpr double kAdmitPerEntry = 20.0;  // protected intake = the 1x per-entry share
constexpr std::size_t kThreadsPerNode = 6;

struct Cell {
  std::string name;
  double multiplier = 1.0;
  bool flow = false;
};

struct CellResult {
  Cell cell;
  std::uint64_t samples = 0;
  std::uint64_t failures = 0;
  std::uint64_t rejections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_admission = 0;
  std::uint64_t events = 0;
  std::uint64_t good = 0;      // samples within the SLO
  double goodput_per_sec = 0;  // good / measured window
  double p99_ms = 0;
  double wall_seconds = 0;
  std::uint64_t digest = 0;  // FNV-1a over the deterministic outcome
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

CellResult run_cell(const Cell& cell, const ExperimentSpec& base) {
  mutsvc::apps::petstore::PetStoreApp app;
  ExperimentSpec spec = base;
  spec.level = ConfigLevel::kAsyncUpdates;
  spec.open_loop_arrivals = true;
  spec.total_request_rate = kBaseRate * cell.multiplier;
  spec.seed = 0xF1A5 + static_cast<std::uint64_t>(cell.multiplier * 10.0);
  if (cell.flow) {
    spec.flow.enabled = true;
    spec.flow.admission_rate = kAdmitPerEntry;
    spec.flow.admission_burst = 20.0;
    spec.flow.topic_queue.capacity = 16;
    spec.flow.topic_queue.policy = mutsvc::net::OverflowPolicy::kLocalOverflow;
    spec.flow.write_queue.capacity = 64;
    spec.flow.backpressure = true;
  }

  mutsvc::core::HarnessCalibration cal = mutsvc::core::petstore_calibration();
  cal.container_threads = kThreadsPerNode;

  mutsvc::perf::WallTimer timer;
  Experiment exp{app.driver(), spec, cal};
  std::vector<double> responses_ms;
  exp.set_response_observer([&responses_ms](double ms) { responses_ms.push_back(ms); });
  exp.run();

  CellResult r;
  r.cell = cell;
  r.wall_seconds = timer.seconds();
  const auto& res = exp.results();
  r.samples = res.total_samples();
  r.failures = res.failures();
  r.rejections = res.rejections();
  r.admitted = exp.requests_admitted();
  r.rejected_admission = exp.rejected_admission();
  r.events = exp.simulator().executed_events();
  for (double ms : responses_ms) {
    if (ms <= kSloMs) ++r.good;
  }
  const double window = (spec.duration - spec.warmup).as_seconds();
  r.goodput_per_sec = window > 0.0 ? static_cast<double>(r.good) / window : 0.0;
  if (!responses_ms.empty()) {
    std::sort(responses_ms.begin(), responses_ms.end());
    const auto rank = static_cast<std::size_t>(0.99 * static_cast<double>(responses_ms.size()));
    r.p99_ms = responses_ms[std::min(rank, responses_ms.size() - 1)];
  }
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, r.samples);
  h = fnv1a(h, r.failures);
  h = fnv1a(h, r.rejections);
  h = fnv1a(h, r.admitted);
  h = fnv1a(h, r.rejected_admission);
  h = fnv1a(h, r.events);
  for (double ms : responses_ms) {
    h = fnv1a(h, static_cast<std::uint64_t>(ms * 1000.0));
  }
  r.digest = h;
  return r;
}

}  // namespace

int main() {
  using mutsvc::bench::base_spec;
  ExperimentSpec base = base_spec();
  // The paper-scale hour is overkill for a sweep with a 10x open-loop cell;
  // 600s (120s under MUTSVC_FAST via base_spec) is plenty to separate the
  // protected plateau from the collapse.
  if (std::getenv("MUTSVC_FAST") == nullptr) {
    base.duration = mutsvc::sim::sec(600);
    base.warmup = mutsvc::sim::sec(60);
  }

  std::vector<Cell> cells;
  for (double m : {1.0, 2.0, 4.0, 10.0}) {
    cells.push_back({"off" + std::to_string(static_cast<int>(m)) + "x", m, false});
    cells.push_back({"on" + std::to_string(static_cast<int>(m)) + "x", m, true});
  }
  cells.push_back({"on10x_repeat", 10.0, true});  // determinism probe

  std::vector<std::function<CellResult()>> trials;
  trials.reserve(cells.size());
  for (const Cell& c : cells) {
    trials.push_back([c, &base] { return run_cell(c, base); });
  }
  std::cerr << "flash-crowd sweep: " << trials.size() << " cells, jobs="
            << mutsvc::core::sweep::configured_jobs() << std::endl;
  std::vector<CellResult> results = mutsvc::core::sweep::run_trials(std::move(trials));

  auto find = [&results](const std::string& name) -> const CellResult& {
    for (const CellResult& r : results) {
      if (r.cell.name == name) return r;
    }
    throw std::logic_error("missing cell " + name);
  };

  std::cout << "Flash crowd (PetStore async rung, open-loop Poisson, SLO " << kSloMs
            << "ms):\n";
  for (const CellResult& r : results) {
    std::cout << "  " << r.cell.name << ": offered " << kBaseRate * r.cell.multiplier
              << "/s goodput " << r.goodput_per_sec << "/s p99 " << r.p99_ms << "ms samples "
              << r.samples << " rejected " << r.rejected_admission << " failures " << r.failures
              << " [" << r.wall_seconds << "s wall]\n";
  }

  int rc = 0;
  auto check = [&rc](bool ok, const std::string& what) {
    if (!ok) {
      std::cout << "FAIL: " << what << "\n";
      rc = 1;
    } else {
      std::cout << "ok: " << what << "\n";
    }
  };

  const CellResult& on1 = find("on1x");
  const CellResult& on10 = find("on10x");
  const CellResult& off1 = find("off1x");
  const CellResult& off10 = find("off10x");
  check(on10.goodput_per_sec >= 0.9 * on1.goodput_per_sec,
        "protected goodput at 10x within 90% of the protected 1x cell (" +
            std::to_string(on10.goodput_per_sec) + " vs " + std::to_string(on1.goodput_per_sec) +
            ")");
  check(on10.p99_ms > 0.0 && on10.p99_ms <= kSloMs,
        "protected admitted p99 stays bounded at 10x (" + std::to_string(on10.p99_ms) + "ms)");
  check(on10.rejected_admission > 0, "admission sheds at 10x");
  check(off10.goodput_per_sec < 0.5 * off1.goodput_per_sec,
        "unprotected goodput collapses at 10x (" + std::to_string(off10.goodput_per_sec) +
            " vs " + std::to_string(off1.goodput_per_sec) + ")");
  check(find("on10x_repeat").digest == on10.digest,
        "repeated protected 10x cell is bit-identical (determinism)");

  const char* path = std::getenv("MUTSVC_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    std::vector<mutsvc::perf::Benchmark> out;
    for (const CellResult& r : results) {
      mutsvc::perf::Benchmark b{"flash." + r.cell.name, {}};
      b.add("events", static_cast<double>(r.events));
      b.add("samples", static_cast<double>(r.samples));
      b.add("rejected", static_cast<double>(r.rejected_admission));
      b.add("failures", static_cast<double>(r.failures));
      b.add("good_samples", static_cast<double>(r.good));
      b.add("p99_ms", r.p99_ms);
      b.add("wall_seconds", r.wall_seconds);
      out.push_back(std::move(b));
    }
    mutsvc::perf::write_bench_json(path, "flash_crowd", out);
    std::cerr << "wrote " << path << "\n";
  }
  return rc;
}

// Ablation A3 (§4.3): pull- vs push-based refresh of read-only entity
// beans. After an invalidating write, a pull-refreshed replica pays one
// wide-area round trip on the first read; a pushed replica answers locally
// ("clients of read-only beans will always have local response times").
#include <iostream>

#include "bench/mini_world.hpp"
#include "stats/table.hpp"

namespace {

using namespace mutsvc;
using comp::CallContext;
using comp::Feature;
using sim::Task;

void define_components(bench::MiniWorld& w) {
  auto& reader = w.app.define("Reader", comp::ComponentKind::kStatelessSessionBean);
  reader.method({.name = "get",
                 .cpu = sim::Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   auto row = co_await ctx.read_entity("Item", ctx.arg_int(0));
                   if (row) ctx.result.push_back(*row);
                 }});
  auto& writer = w.app.define("Writer", comp::ComponentKind::kStatelessSessionBean);
  writer.method({.name = "set",
                 .cpu = sim::Duration::zero(),
                 .body = [](CallContext& ctx) -> Task<void> {
                   co_await ctx.write_entity("Item", ctx.arg_int(0), "qty", ctx.arg(1));
                 }});
}

struct Outcome {
  double writer_ms = 0.0;
  double first_read_ms = 0.0;
  double steady_read_ms = 0.0;
};

/// Push variant: blocking push keeps the replica warm.
Outcome run_push() {
  bench::MiniWorld w{2};
  define_components(w);
  auto plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  for (auto e : w.edges) {
    plan.replicate_read_only("Item", e);
    plan.place("Reader", e);
  }
  auto& rt = w.start(std::move(plan));

  Outcome out;
  // Warm the replica, write (which pushes), then read.
  (void)w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  out.writer_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.main, "Writer", "set", std::int64_t{7}, std::int64_t{999});
  }(rt, w));
  out.first_read_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  out.steady_read_ms = out.first_read_ms;
  return out;
}

/// Pull variant: model the common vendor approach — the write only
/// invalidates (cheap), and the replica re-fetches on the next read. We
/// emulate it by invalidating the replica directly, since the runtime's
/// write path implements the paper's preferred push protocol.
Outcome run_pull() {
  bench::MiniWorld w{2};
  define_components(w);
  auto plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  for (auto e : w.edges) {
    plan.replicate_read_only("Item", e);
    plan.place("Reader", e);
  }
  auto& rt = w.start(std::move(plan));

  Outcome out;
  (void)w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  // Invalidation-only write: update the DB and drop replica entries — the
  // invalidation RMI still costs the writer one (cheap, parallelizable)
  // notification; we charge the write itself only.
  out.writer_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    w.database->execute_immediate(db::Query::update("item", 7, "qty", std::int64_t{999}));
    for (auto e : w.edges) rt.ro_cache(e, "Item").invalidate(7);
    co_return;
  }(rt, w));
  out.first_read_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  out.steady_read_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  return out;
}

/// Vendor-default variant: timeout invalidation. No update coordination at
/// all — replicas simply expire and re-pull, paying a WAN trip per entry
/// per TTL window, and serving stale data inside the window.
Outcome run_ttl() {
  bench::MiniWorld w{2};
  define_components(w);
  auto plan = w.base_plan();
  plan.enable(Feature::kStatefulComponentCaching);
  plan.enable(Feature::kStubCaching);
  for (auto e : w.edges) {
    plan.replicate_read_only("Item", e);
    plan.place("Reader", e);
  }
  comp::RuntimeConfig cfg;
  cfg.ro_ttl = sim::sec(30);
  auto& rt = w.start(std::move(plan), cfg);

  Outcome out;
  (void)w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  out.writer_ms = w.timed([](bench::MiniWorld& w) -> Task<void> {
    w.database->execute_immediate(db::Query::update("item", 7, "qty", std::int64_t{999}));
    co_return;  // no invalidation traffic at all
  }(w));
  // A read inside the TTL window serves (stale) local data...
  out.steady_read_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  // ...and the first read past expiry re-pulls across the WAN.
  w.sim.run_for(sim::sec(31));
  out.first_read_ms = w.timed([](comp::Runtime& rt, bench::MiniWorld& w) -> Task<void> {
    (void)co_await rt.invoke(w.edges[0], "Reader", "get", std::int64_t{7});
  }(rt, w));
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A3: pull vs push refresh of read-only beans (§4.3) ===\n"
            << "(2 edge replicas, 100 ms one-way WAN)\n\n";

  Outcome ttl = run_ttl();
  Outcome pull = run_pull();
  Outcome push = run_push();

  mutsvc::stats::TextTable table{
      {"protocol", "writer commit (ms)", "first read after write (ms)", "steady read (ms)"}};
  table.add_row({"timeout invalidation (30s TTL)",
                 mutsvc::stats::TextTable::cell_fixed(ttl.writer_ms, 1),
                 mutsvc::stats::TextTable::cell_fixed(ttl.first_read_ms, 1) + " (stale until expiry)",
                 mutsvc::stats::TextTable::cell_fixed(ttl.steady_read_ms, 1)});
  table.add_row({"pull (invalidate, refetch on demand)",
                 mutsvc::stats::TextTable::cell_fixed(pull.writer_ms, 1),
                 mutsvc::stats::TextTable::cell_fixed(pull.first_read_ms, 1),
                 mutsvc::stats::TextTable::cell_fixed(pull.steady_read_ms, 1)});
  table.add_row({"push (blocking, state rides the call)",
                 mutsvc::stats::TextTable::cell_fixed(push.writer_ms, 1),
                 mutsvc::stats::TextTable::cell_fixed(push.first_read_ms, 1),
                 mutsvc::stats::TextTable::cell_fixed(push.steady_read_ms, 1)});
  table.print(std::cout);

  std::cout << "\nPull penalizes the first reader with a WAN round trip; push moves the\n"
            << "cost to the writer ('a small price to pay for significantly improving\n"
            << "the response time of remote clients', §4.3). §4.5 then removes the\n"
            << "writer's cost too (see bench_ablation_async_scaling).\n";
  return 0;
}

// Reproduces Figure 8: RUBiS session average response times — one bar per
// (client group x usage pattern) for each of the five configurations.
#include <iostream>

#include "apps/rubis/rubis.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== Figure 8: RUBiS session average response times (ms) ===\n\n";

  apps::rubis::RubisApp app;
  apps::AppDriver driver = app.driver();
  bench::LadderRun run = bench::run_ladder(driver, core::rubis_calibration(), bench::base_spec());
  core::print_session_averages(std::cout, driver, run.results);
  bench::maybe_write_ladder_json("rubis", run);

  std::cout << "\nPaper's Figure 8 (approximate bar heights, ms):\n"
            << "  Centralized:   LocalBrowser ~30  LocalBidder ~25  RemoteBrowser ~440  "
               "RemoteBidder ~425\n"
            << "  Remote facade: ~28 ~24 ~305 ~195\n"
            << "  St.comp.cache: ~27 ~125 ~250 ~270\n"
            << "  Query caching: ~25 ~130 ~20 ~245\n"
            << "  Async updates: ~25 ~25 ~20 ~75\n\n"
            << "Shape checks: query caching makes the remote browser indistinguishable\n"
            << "from the local one ('triumphal performance', §4.4); blocking push makes\n"
            << "bidders worse than centralized; async updates fix the bidder while\n"
            << "keeping all browser improvements.\n";
  return 0;
}

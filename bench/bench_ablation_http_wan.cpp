// Ablation A1 (§4.1): a wide-area HTTP request without keep-alive costs two
// WAN round trips (TCP handshake + request/response) — the measured +400 ms
// penalty of the centralized configuration. Sweeps one-way latency and
// compares keep-alive connections.
#include <iostream>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

int main() {
  using namespace mutsvc;
  using sim::Duration;
  using sim::ms;

  std::cout << "=== Ablation A1: WAN HTTP cost (TCP handshake + request RTT) ===\n\n";

  stats::TextTable table{{"one-way latency (ms)", "no keep-alive (ms)", "keep-alive, warm (ms)",
                          "round trips (cold)"}};

  for (double latency_ms : {1.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
    double cold = 0.0;
    double warm = 0.0;
    for (bool keep_alive : {false, true}) {
      sim::Simulator sim{1};
      net::Topology topo{sim};
      auto client = topo.add_node("client", net::NodeRole::kClientMachine);
      auto server = topo.add_node("server", net::NodeRole::kAppServer);
      topo.add_link(client, server, ms(latency_ms), 100e6);
      net::Network net{sim, topo, Duration::zero()};
      net::HttpConfig cfg;
      cfg.keep_alive = keep_alive;
      net::HttpTransport http{net, cfg};

      // First request warms the connection pool; second measures steady state.
      sim::SimTime t0, t1, t2;
      sim.spawn([](net::HttpTransport& http, net::NodeId c, net::NodeId s, sim::Simulator& sim,
                   sim::SimTime& t0, sim::SimTime& t1, sim::SimTime& t2) -> sim::Task<void> {
        t0 = sim.now();
        co_await http.request(c, s, 400, []() -> sim::Task<net::Bytes> { co_return 6000; });
        t1 = sim.now();
        co_await http.request(c, s, 400, []() -> sim::Task<net::Bytes> { co_return 6000; });
        t2 = sim.now();
      }(http, client, server, sim, t0, t1, t2));
      sim.run_until();

      if (keep_alive) {
        warm = (t2 - t1).as_millis();
      } else {
        cold = (t1 - t0).as_millis();
      }
    }
    table.add_row({stats::TextTable::cell_fixed(latency_ms, 0),
                   stats::TextTable::cell_fixed(cold, 1), stats::TextTable::cell_fixed(warm, 1),
                   stats::TextTable::cell_fixed(cold / (2.0 * latency_ms), 2)});
  }
  table.print(std::cout);
  std::cout << "\nAt the paper's 100 ms one-way WAN latency, the cold request costs ~400 ms\n"
            << "(= 2 round trips), matching Table 6/7's centralized remote penalty.\n";
  return 0;
}

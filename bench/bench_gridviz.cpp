// Generality check G1 (§6): "the identified application design rules are of
// equal importance for interactive scientific grid-based applications".
// Runs the GridViz application — frame scrubbing, live instrument
// dashboards, computational steering — through the same five-configuration
// ladder, untouched.
#include <iostream>

#include "apps/gridviz/gridviz.hpp"
#include "bench/table_common.hpp"

int main() {
  using namespace mutsvc;

  std::cout << "=== G1: the design-rule ladder on a grid visualization service ===\n\n";

  apps::gridviz::GridVizApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal;
  cal.testbed.db_colocated = true;
  cal.rmi.extra_rtt_prob = 0.5;
  cal.runtime.jms_accept = sim::ms(2);

  bench::LadderRun run = bench::run_ladder(driver, cal, bench::base_spec());
  core::print_paper_table(std::cout, driver, run.results);
  std::cout << "\n";
  core::print_session_averages(std::cout, driver, run.results);

  // WAN bytes: frame tiles dominate; edge replicas of Frame should slash
  // wide-area traffic, not just latency.
  std::cout << "\nWAN traffic (MB over the run):\n";
  for (std::size_t i = 0; i < run.experiments.size(); ++i) {
    std::cout << "  " << core::to_string(run.results[i].level) << ": "
              << run.experiments[i]->network().wan_bytes_sent() / (1024 * 1024) << " MB\n";
  }

  std::cout << "\nShape checks: analysts (frame scrubbing + dashboards) behave like the\n"
            << "e-commerce browsers — centralized +400 ms, fully edge-local by the\n"
            << "query-caching rung; operators behave like buyers/bidders — blocking\n"
            << "push penalizes steering and instrument appends, asynchronous updates\n"
            << "restore them. Frame-tile WAN traffic collapses once frames are served\n"
            << "from edge replicas (the 'caching and distilling' role that Active\n"
            << "Frames/MOSS-style wrappers play in §6's related work).\n";
  return 0;
}

#pragma once

// A minimal main+edges testbed around the container runtime, shared by the
// ablation benches that exercise one design rule in isolation.

#include <memory>
#include <vector>

#include "component/deployment.hpp"
#include "component/model.hpp"
#include "component/runtime.hpp"
#include "db/database.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mutsvc::bench {

struct MiniWorld {
  sim::Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId main;
  std::vector<net::NodeId> edges;
  net::Network net{sim, topo, sim::Duration::zero()};
  std::unique_ptr<net::RmiTransport> rmi;
  std::unique_ptr<db::Database> database;
  comp::Application app{"mini"};
  std::unique_ptr<comp::Runtime> runtime;

  explicit MiniWorld(int edge_count = 2, double extra_rtt_prob = 0.0) {
    main = topo.add_node("main", net::NodeRole::kAppServer);
    for (int i = 0; i < edge_count; ++i) {
      auto e = topo.add_node("edge" + std::to_string(i), net::NodeRole::kAppServer);
      topo.add_link(main, e, sim::ms(100), 100e6);
      edges.push_back(e);
    }
    net::RmiConfig rcfg;
    rcfg.extra_rtt_prob = extra_rtt_prob;
    rcfg.dgc_traffic_factor = 1.0;
    rmi = std::make_unique<net::RmiTransport>(net, rcfg);
    database = std::make_unique<db::Database>(topo, main);
    auto& items = database->create_table(
        "item", {{"id", db::ColumnType::kInt}, {"qty", db::ColumnType::kInt}});
    for (std::int64_t i = 0; i < 100; ++i) items.insert(db::Row{i, std::int64_t{1000}});
  }

  /// Builds the runtime after components/plan are set up.
  comp::Runtime& start(comp::DeploymentPlan plan, comp::RuntimeConfig cfg = {}) {
    runtime = std::make_unique<comp::Runtime>(sim, topo, net, *rmi, *database, app,
                                              std::move(plan), cfg);
    runtime->bind_entity("Item", "item");
    return *runtime;
  }

  comp::DeploymentPlan base_plan() {
    comp::DeploymentPlan plan;
    plan.set_main_server(main);
    for (auto e : edges) plan.add_edge_server(e);
    for (const auto& name : app.component_names()) plan.place(name, main);
    return plan;
  }

  /// Runs `t` and returns the task's own completion time in ms (background
  /// activity it spawned may finish later).
  double timed(sim::Task<void> t) {
    sim::SimTime start = sim.now();
    sim::SimTime done = start;
    sim.spawn([](sim::Task<void> t, sim::Simulator& s, sim::SimTime& done) -> sim::Task<void> {
      co_await std::move(t);
      done = s.now();
    }(std::move(t), sim, done));
    sim.run_until();
    return (done - start).as_millis();
  }
};

}  // namespace mutsvc::bench

// Ablation A2 (§4.2): why the remote façade rule matters. Serving a
// catalog page from an edge server by (a) direct JDBC across the WAN —
// the naive deployment, with its verbose connection lifecycle and
// result-set traversal — versus (b) one bulk façade RMI, versus (c) not
// distributing at all (WAN HTTP to the centre).
#include <iostream>

#include "db/database.hpp"
#include "db/jdbc.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

namespace {

using namespace mutsvc;
using sim::Duration;
using sim::ms;

struct Setup {
  sim::Simulator sim{1};
  net::Topology topo{sim};
  net::NodeId edge, main;
  net::Network net{sim, topo, Duration::zero()};
  std::unique_ptr<db::Database> database;

  Setup() {
    edge = topo.add_node("edge", net::NodeRole::kAppServer);
    main = topo.add_node("main", net::NodeRole::kDatabaseServer);
    topo.add_link(edge, main, ms(100), 100e6);
    database = std::make_unique<db::Database>(topo, main);
    auto& products = database->create_table(
        "product", {{"id", db::ColumnType::kInt},
                    {"category_id", db::ColumnType::kInt},
                    {"name", db::ColumnType::kText}});
    for (std::int64_t i = 0; i < 60; ++i) {
      products.insert(db::Row{i, i % 10, std::string{"product-"} + std::to_string(i)});
    }
    products.create_index("category_id");
  }

  double timed(sim::Task<void> t) {
    sim::SimTime start = sim.now();
    sim.spawn(std::move(t));
    sim.run_until();
    return (sim.now() - start).as_millis();
  }
};

}  // namespace

int main() {
  std::cout << "=== Ablation A2: edge data access strategies for one catalog page ===\n"
            << "(6-row category listing; 100 ms one-way WAN; entity-per-row BMP loads)\n\n";

  stats::TextTable table{{"strategy", "page data-access time (ms)", "WAN messages"}};

  // (a) naive: edge web tier opens a JDBC connection across the WAN and
  // traverses the result set row by row, then loads each entity (n+1).
  {
    Setup s;
    db::JdbcConfig cfg;
    cfg.fetch_size = 1;               // row-at-a-time ResultSet traversal
    cfg.pool_connections = false;     // open/recycle per request
    db::JdbcClient jdbc{s.net, *s.database, s.edge, cfg};
    double t = s.timed([](db::JdbcClient& jdbc) -> sim::Task<void> {
      auto heads = co_await jdbc.execute(
          db::Query::finder("product", "category_id", std::int64_t{3}));
      for (const auto& row : heads.rows) {
        (void)co_await jdbc.execute(db::Query::pk_lookup("product", db::as_int(row[0])));
      }
    }(jdbc));
    table.add_row({"naive: WAN JDBC, n+1 loads", stats::TextTable::cell_fixed(t, 0),
                   std::to_string(s.net.wan_messages_sent())});
  }

  // (a') naive but with pooled connections and batch fetches.
  {
    Setup s;
    db::JdbcConfig cfg;
    cfg.fetch_size = 10;
    db::JdbcClient jdbc{s.net, *s.database, s.edge, cfg};
    double t = s.timed([](db::JdbcClient& jdbc) -> sim::Task<void> {
      (void)co_await jdbc.execute(
          db::Query::finder("product", "category_id", std::int64_t{3}));
    }(jdbc));
    table.add_row({"WAN JDBC, pooled + bulk fetch", stats::TextTable::cell_fixed(t, 0),
                   std::to_string(s.net.wan_messages_sent())});
  }

  // (b) remote façade: one bulk RMI; the query runs next to the database.
  {
    Setup s;
    net::RmiConfig rcfg;
    rcfg.extra_rtt_prob = 0.0;
    rcfg.dgc_traffic_factor = 1.0;
    net::RmiTransport rmi{s.net, rcfg};
    db::JdbcClient jdbc{s.net, *s.database, s.main};
    double t = s.timed([](net::RmiTransport& rmi, db::JdbcClient& jdbc, Setup& s)
                           -> sim::Task<void> {
      co_await rmi.call_dynamic(s.edge, s.main, 200, [&]() -> sim::Task<net::Bytes> {
        auto res = co_await jdbc.execute(
            db::Query::finder("product", "category_id", std::int64_t{3}));
        co_return res.wire_bytes();
      });
    }(rmi, jdbc, s));
    table.add_row({"remote facade: 1 bulk RMI", stats::TextTable::cell_fixed(t, 0),
                   std::to_string(s.net.wan_messages_sent())});
  }

  // (c) centralized: the page is not served from the edge at all — the
  // client pays a WAN HTTP request instead (2 round trips, §4.1).
  table.add_row({"centralized (WAN HTTP, for reference)", "400", "4"});

  table.print(std::cout);
  std::cout << "\nThe naive deployment is 'overwhelmingly degraded' (§4.2); the façade\n"
            << "reduces the page to a single wide-area round trip and beats even the\n"
            << "centralized deployment's 2-RTT HTTP cost.\n";
  return 0;
}

// Sensitivity sweep S3: scale-out data tier. The same Pet Store workload
// runs against 1, 2, 4, and 8 hash-partitioned database shards; the tables
// stay logically unified, so every configuration must compute *identical*
// query results, while each shard node serves only its slice of the
// service demand — the hottest DB node's busy fraction falls strictly as
// the fleet widens. Self-checking: exits nonzero if the per-shard load
// fails to decrease monotonically or any shard count changes a result.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "bench/table_common.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "db/database.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

void fnv(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
}

/// FNV-1a digest of a fixed, deterministic query battery against the final
/// database state. Pure data — no timing-sensitive statistics — so it must
/// be bit-identical across shard counts (and MUTSVC_JOBS values).
std::uint64_t result_digest(db::Database& db) {
  std::vector<db::Query> battery;
  for (std::int64_t pk = 1; pk <= 25; ++pk) {
    battery.push_back(db::Query::pk_lookup("item", pk));
    battery.push_back(db::Query::pk_lookup("inventory", pk));
  }
  for (std::int64_t p = 1; p <= 10; ++p) {
    battery.push_back(db::Query::finder("item", "product_id", p));
  }
  battery.push_back(db::Query::finder("orders", "account_id", std::int64_t{1}));

  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const db::Query& q : battery) {
    const db::QueryResult res = db.execute_immediate(q);
    fnv(h, res.rows.size());
    for (const db::Row& row : res.rows) {
      for (const db::Value& v : row) {
        if (const auto* i = std::get_if<std::int64_t>(&v)) {
          fnv(h, static_cast<std::uint64_t>(*i));
        } else if (const auto* d = std::get_if<double>(&v)) {
          std::uint64_t bits = 0;
          static_assert(sizeof(bits) == sizeof(*d));
          std::memcpy(&bits, d, sizeof(bits));
          fnv(h, bits);
        } else {
          for (char c : std::get<std::string>(v)) fnv(h, static_cast<unsigned char>(c));
        }
      }
    }
  }
  return h;
}

struct Row {
  std::size_t shards = 0;
  double browser_remote = 0.0;
  double max_shard_busy = 0.0;  // hottest DB node, post-warm-up busy fraction
  double sum_shard_busy = 0.0;  // whole data tier (fan-out overhead shows here)
  std::uint64_t digest = 0;
};

Row run(std::size_t shards) {
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec = bench::base_spec();
  spec.level = core::ConfigLevel::kAsyncUpdates;
  spec.shard.shards = shards;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  Row r;
  r.shards = shards;
  r.browser_remote = exp.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote);
  for (net::NodeId node : exp.nodes().db_nodes) {
    const double busy = exp.cpu_utilization(node);
    r.max_shard_busy = std::max(r.max_shard_busy, busy);
    r.sum_shard_busy += busy;
  }
  r.digest = result_digest(exp.database());
  return r;
}

}  // namespace

int main() {
  std::cout << "=== Sensitivity S3: hash-sharding the data tier (Pet Store, async) ===\n\n";

  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::vector<std::function<Row()>> trials;
  for (std::size_t shards : shard_counts) {
    trials.push_back([shards] { return run(shards); });
  }
  std::vector<Row> rows = core::sweep::run_trials(std::move(trials));

  stats::TextTable table{{"shards", "remote browser (ms)", "hottest shard busy",
                          "data tier busy (sum)", "result digest"}};
  char digest_hex[32];
  for (const Row& r : rows) {
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    table.add_row({std::to_string(r.shards), stats::TextTable::cell_ms(r.browser_remote),
                   stats::TextTable::cell_fixed(r.max_shard_busy * 100.0, 2) + "%",
                   stats::TextTable::cell_fixed(r.sum_shard_busy * 100.0, 2) + "%",
                   digest_hex});
  }
  table.print(std::cout);

  bool ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].max_shard_busy >= rows[i - 1].max_shard_busy) {
      std::cerr << "FAIL: hottest-shard busy fraction did not decrease from " << rows[i - 1].shards
                << " to " << rows[i].shards << " shards (" << rows[i - 1].max_shard_busy << " -> "
                << rows[i].max_shard_busy << ")\n";
      ok = false;
    }
    if (rows[i].digest != rows[0].digest) {
      std::cerr << "FAIL: query results differ between 1 shard and " << rows[i].shards
                << " shards\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "\nCHECK OK: per-shard DB load strictly decreases 1 -> 8 shards and every\n"
              << "shard count computes identical query results (the partition is an\n"
              << "attribution of cost, never of visibility).\n";
  }
  return ok ? 0 : 1;
}

// Quickstart: the smallest end-to-end use of the library.
//
// Builds a two-component application (a web front end and a catalog façade
// over one entity), deploys it centralized and then with the paper's design
// rules applied, and compares what a wide-area client experiences.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <iostream>

#include "component/model.hpp"
#include "component/runtime.hpp"
#include "core/design_rules.hpp"
#include "core/testbed.hpp"
#include "db/database.hpp"
#include "net/network.hpp"
#include "net/rmi.hpp"
#include "sim/simulator.hpp"

using namespace mutsvc;
using comp::CallContext;
using sim::Task;

int main() {
  // 1. A simulator and the paper's Figure-2 testbed: one main server
  //    (holding the database), two edge servers across a 100 ms WAN.
  sim::Simulator sim{42};
  net::Topology topo{sim};
  core::TestbedConfig tb_cfg;
  tb_cfg.db_colocated = true;
  core::TestbedNodes nodes = core::build_testbed(topo, tb_cfg);
  net::Network net{sim, topo};
  net::RmiTransport rmi{net};

  // 2. A database with one table.
  db::Database database{topo, nodes.db_node};
  auto& articles = database.create_table(
      "article", {{"id", db::ColumnType::kInt}, {"title", db::ColumnType::kText}});
  for (std::int64_t i = 1; i <= 50; ++i) {
    articles.insert(db::Row{i, "Article #" + std::to_string(i)});
  }

  // 3. The application: a servlet page calling a façade that reads an
  //    entity bean. Bodies are coroutines against the container context.
  comp::Application app{"quickstart"};
  auto& facade = app.define("ArticleFacade", comp::ComponentKind::kStatelessSessionBean);
  facade.method({.name = "get",
                 .cpu = sim::us(400),
                 .body = [](CallContext& ctx) -> Task<void> {
                   auto row = co_await ctx.read_entity("Article", ctx.arg_int(0));
                   if (row) ctx.result.push_back(*row);
                 }});
  auto& web = app.define("Web", comp::ComponentKind::kServlet);
  web.method({.name = "article",
              .cpu = sim::ms(1),
              .latency = sim::ms(5),
              .body = [](CallContext& ctx) -> Task<void> {
                auto res = co_await ctx.call("ArticleFacade", "get", ctx.arg(0));
                ctx.result = std::move(res.rows);
              }});

  // 4. Two deployments: centralized, and with the design rules applied
  //    (web tier at the edges, read-only Article replicas, async updates).
  auto run_once = [&](bool distributed) -> double {
    comp::DeploymentPlan plan;
    plan.set_main_server(nodes.main_server);
    for (auto e : nodes.edge_servers) plan.add_edge_server(e);
    plan.place("ArticleFacade", nodes.main_server);
    plan.place("Web", nodes.main_server);
    if (distributed) {
      plan.enable(comp::Feature::kRemoteFacade);
      plan.enable(comp::Feature::kStubCaching);
      plan.enable(comp::Feature::kStatefulComponentCaching);
      plan.enable(comp::Feature::kAsyncUpdates);
      for (auto e : nodes.edge_servers) {
        plan.place("Web", e);
        plan.place("ArticleFacade", e);
        plan.replicate_read_only("Article", e);
      }
    }
    comp::Runtime rt{sim, topo, net, rmi, database, app, std::move(plan), {}};
    rt.bind_entity("Article", "article");

    // A remote client's page view, twice (first visit warms the replica).
    const net::NodeId edge = nodes.edge_servers[0];
    const net::NodeId entry = distributed ? edge : nodes.main_server;
    sim::SimTime start;
    sim::SimTime done;
    sim.spawn([](comp::Runtime& rt, net::NodeId entry, sim::Simulator& sim, sim::SimTime& start,
                 sim::SimTime& done) -> Task<void> {
      (void)co_await rt.invoke(entry, "Web", "article", std::int64_t{7});  // warm
      start = sim.now();
      (void)co_await rt.invoke(entry, "Web", "article", std::int64_t{7});
      done = sim.now();
    }(rt, entry, sim, start, done));
    sim.run_until();
    return (done - start).as_millis();
  };

  const double centralized_ms = run_once(false) + 400.0;  // + WAN HTTP round trips
  const double distributed_ms = run_once(true);

  std::cout << "Remote client, one article page view:\n"
            << "  centralized deployment: " << centralized_ms << " ms"
            << "  (page runs at the main server, HTTP crosses the WAN)\n"
            << "  design rules applied:   " << distributed_ms << " ms"
            << "  (page runs at the edge, served by a read-only replica)\n\n"
            << "Next steps: examples/petstore_tour.cpp walks the paper's full\n"
            << "five-configuration ladder; examples/placement_advisor.cpp derives\n"
            << "the distribution automatically from a measured profile.\n";
  return 0;
}

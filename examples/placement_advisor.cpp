// Placement advisor: the §5 automation loop, end to end.
//
//   1. Run the application centralized (with façade structure) and measure
//      its component interaction graph.
//   2. Feed the graph to the placement optimizer.
//   3. Synthesize a deployment plan from the advice.
//   4. Simulate that plan and compare it with the paper's hand-built
//      final configuration.
//
// Run: ./build/examples/placement_advisor
#include <iostream>

#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/placement/advisor.hpp"
#include "core/placement/graph.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

int main() {
  apps::rubis::RubisApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::rubis_calibration();

  std::cout << "=== Automatic placement: profile -> optimize -> deploy -> verify ===\n\n";

  // Step 1: profile.
  core::ExperimentSpec profile_spec;
  profile_spec.level = core::ConfigLevel::kRemoteFacade;
  profile_spec.duration = sim::sec(600);
  profile_spec.warmup = sim::sec(0);
  core::Experiment profiler{driver, profile_spec, cal};
  profiler.run();
  std::cout << "profiled " << profiler.results().total_samples() << " page requests\n";

  core::placement::GraphBuildOptions opts;
  opts.window = profile_spec.duration;
  core::placement::PlacementProblem problem;
  problem.graph =
      core::placement::build_graph(profiler.runtime().interaction_profile(), *driver.app, opts);
  std::cout << "interaction graph: " << problem.graph.vertex_count() << " vertices / "
            << problem.graph.edges().size() << " edges\n\n";

  // Step 2: optimize.
  core::placement::Advice advice =
      core::placement::advise(problem, core::placement::Algorithm::kAnnealing, /*seed=*/11);
  std::cout << advice.describe(problem.graph) << "\n";

  // Step 3: synthesize a deployment plan and simulate it.
  core::ExperimentSpec spec;
  spec.duration = sim::sec(1200);
  spec.warmup = sim::sec(180);
  spec.custom_plan = [&](const core::TestbedNodes& nodes) {
    return core::placement::to_deployment_plan(advice, *driver.app, *driver.meta, nodes,
                                               /*async_updates=*/true);
  };
  core::Experiment advised{driver, spec, cal};
  advised.run();

  // The paper's best hand configuration for comparison.
  core::ExperimentSpec hand_spec = spec;
  hand_spec.level = core::ConfigLevel::kAsyncUpdates;
  core::Experiment hand{driver, hand_spec, cal};
  hand.run();

  stats::TextTable table{
      {"deployment", "Remote Browser (ms)", "Remote Bidder (ms)", "Local Browser (ms)"}};
  auto row = [&](const char* name, core::Experiment& e) {
    table.add_row({name,
                   stats::TextTable::cell_ms(
                       e.results().pattern_mean_ms("Browser", stats::ClientGroup::kRemote)),
                   stats::TextTable::cell_ms(
                       e.results().pattern_mean_ms("Bidder", stats::ClientGroup::kRemote)),
                   stats::TextTable::cell_ms(
                       e.results().pattern_mean_ms("Browser", stats::ClientGroup::kLocal))});
  };
  row("advisor-derived plan", advised);
  row("paper's final configuration", hand);
  table.print(std::cout);

  std::cout << "\nThe automatically derived deployment matches the hand-tuned ladder —\n"
            << "the design rules are learnable from a profile, which is exactly the\n"
            << "case §5 makes for container-automated pattern implementation.\n";
  return 0;
}

// Custom application: bring your own component-based service.
//
// Models a small collaborative wiki — pages, revisions, full-text-ish
// search, and edits — defines its own usage patterns, runs it through the
// experiment harness on the Figure-2 testbed, and applies the design rules.
// This is the template to copy when studying an application of your own.
//
// Run: ./build/examples/custom_app
#include <iostream>

#include "apps/common/driver.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace mutsvc;
using comp::CallContext;
using db::Query;
using db::Row;
using db::Value;
using sim::Task;

namespace {

constexpr int kArticles = 200;

/// Reader session: front page, a few article views, one search.
class ReaderSession final : public workload::SessionScript {
 public:
  explicit ReaderSession(sim::RngStream rng) : rng_(std::move(rng)) {}

  std::optional<workload::PageRequest> next() override {
    if (step_ >= 12) return std::nullopt;
    ++step_;
    workload::PageRequest req;
    req.pattern = "Reader";
    req.component = "WikiWeb";
    if (step_ == 1) {
      req.page = "Front Page";
      req.method = "front";
    } else if (step_ % 6 == 0) {
      req.page = "Search";
      req.method = "search";
      req.args = {Value{std::string{"history"}}};
    } else {
      req.page = "Article";
      req.method = "article";
      req.args = {Value{rng_.uniform_int(1, kArticles)}};
    }
    return req;
  }
  const char* pattern() const override { return "Reader"; }

 private:
  sim::RngStream rng_;
  int step_ = 0;
};

/// Editor session: view an article, edit it, review the revision list.
class EditorSession final : public workload::SessionScript {
 public:
  explicit EditorSession(sim::RngStream rng) : rng_(std::move(rng)) {
    article_ = rng_.uniform_int(1, kArticles);
  }

  std::optional<workload::PageRequest> next() override {
    workload::PageRequest req;
    req.pattern = "Editor";
    req.component = "WikiWeb";
    switch (step_++) {
      case 0:
        req.page = "Article";
        req.method = "article";
        req.args = {Value{article_}};
        return req;
      case 1:
        req.page = "Save Edit";
        req.method = "edit";
        req.args = {Value{article_}};
        return req;
      case 2:
        req.page = "Revisions";
        req.method = "revisions";
        req.args = {Value{article_}};
        return req;
      default:
        return std::nullopt;
    }
  }
  const char* pattern() const override { return "Editor"; }

 private:
  sim::RngStream rng_;
  std::int64_t article_ = 1;
  int step_ = 0;
};

struct WikiApp {
  comp::Application app{"wiki"};
  apps::AppMetadata meta;

  WikiApp() {
    auto& facade = app.define("WikiFacade", comp::ComponentKind::kStatelessSessionBean);
    facade.method({.name = "getArticle",
                   .cpu = sim::us(400),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto row = co_await ctx.read_entity("Article", ctx.arg_int(0));
                     if (row) ctx.result.push_back(*row);
                   }});
    facade.method({.name = "getRevisions",
                   .cpu = sim::us(400),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto res = co_await ctx.cached_query(
                         Query::finder("revision", "article_id", ctx.arg(0)));
                     ctx.result = std::move(res.rows);
                   }});
    facade.method({.name = "search",
                   .cpu = sim::us(600),
                   .body = [](CallContext& ctx) -> Task<void> {
                     auto res = co_await ctx.cached_query(
                         Query::keyword_search("article", "title", ctx.arg_text(0)));
                     ctx.result = std::move(res.rows);
                   }});
    // Writes live in their own façade, kept at the main server: a façade
    // that writes must not be replicated to the edges, or every edit pays
    // one routed WAN call per statement (§4.2's unit-of-distribution rule).
    auto& writer = app.define("WikiWriter", comp::ComponentKind::kStatelessSessionBean);
    writer.method(
        {.name = "saveEdit",
         .cpu = sim::us(700),
         .body = [](CallContext& ctx) -> Task<void> {
           const std::int64_t article = ctx.arg_int(0);
           auto current = co_await ctx.read_entity("Article", article);
           const std::int64_t version = current ? db::as_int((*current)[2]) + 1 : 1;
           std::vector<Query> affected{Query::finder("revision", "article_id", Value{article})};
           const std::int64_t rev_id = ctx.allocate_id("revision");
           Row rev{rev_id, article, version};
           co_await ctx.insert_row("Revision", std::move(rev), affected);
           co_await ctx.write_entity("Article", article, "version", version);
         }});

    auto& web = app.define("WikiWeb", comp::ComponentKind::kServlet);
    auto page = [&](const char* name, const char* facade_method, sim::Duration latency) {
      std::string method = facade_method;
      web.method({.name = name,
                  .cpu = sim::ms(1),
                  .latency = latency,
                  .body = [method](CallContext& ctx) -> Task<void> {
                    std::vector<Value> args;
                    for (std::size_t i = 0; i < ctx.arg_count(); ++i) args.push_back(ctx.arg(i));
                    auto res = co_await ctx.call("WikiFacade", method, std::move(args));
                    ctx.result = std::move(res.rows);
                  }});
    };
    web.method({.name = "front", .cpu = sim::ms(1), .latency = sim::ms(8)});
    page("article", "getArticle", sim::ms(10));
    page("revisions", "getRevisions", sim::ms(10));
    page("search", "search", sim::ms(12));
    web.method({.name = "edit",
                .cpu = sim::ms(1),
                .latency = sim::ms(12),
                .body = [](CallContext& ctx) -> Task<void> {
                  (void)co_await ctx.call("WikiWriter", "saveEdit", ctx.arg(0));
                }});

    meta.name = "wiki";
    meta.web_components = {"WikiWeb"};
    meta.edge_facades = {"WikiFacade"};
    meta.query_facades = {"WikiFacade"};
    meta.main_facades = {"WikiWriter"};
    meta.entities = {"ArticleEJB", "RevisionEJB"};
    meta.read_mostly = {"Article"};
    meta.query_refresh = comp::QueryRefreshMode::kPush;
    app.define("ArticleEJB", comp::ComponentKind::kEntityBeanRW).local_interface_only();
    app.define("RevisionEJB", comp::ComponentKind::kEntityBeanRW).local_interface_only();
  }

  apps::AppDriver driver() {
    apps::AppDriver d;
    d.name = "Wiki";
    d.app = &app;
    d.meta = &meta;
    d.db_colocated = true;
    d.writer_pattern = "Editor";
    d.install_database = [](db::Database& db) {
      auto& articles = db.create_table("article", {{"id", db::ColumnType::kInt},
                                                   {"title", db::ColumnType::kText},
                                                   {"version", db::ColumnType::kInt}});
      auto& revisions = db.create_table("revision", {{"id", db::ColumnType::kInt},
                                                     {"article_id", db::ColumnType::kInt},
                                                     {"version", db::ColumnType::kInt}});
      revisions.create_index("article_id");
      std::int64_t rev = 0;
      for (std::int64_t a = 1; a <= kArticles; ++a) {
        articles.insert(Row{a, "A history of topic " + std::to_string(a), std::int64_t{1}});
        revisions.insert(Row{++rev, a, std::int64_t{1}});
      }
    };
    d.bind_entities = [](comp::Runtime& rt) {
      rt.bind_entity("Article", "article");
      rt.bind_entity("Revision", "revision");
    };
    d.browser_factory = [](sim::RngStream rng) -> workload::SessionFactory {
      auto master = std::make_shared<sim::RngStream>(std::move(rng));
      auto n = std::make_shared<int>(0);
      return [master, n] {
        return std::unique_ptr<workload::SessionScript>(
            new ReaderSession(master->fork(std::to_string((*n)++))));
      };
    };
    d.writer_factory = [](sim::RngStream rng) -> workload::SessionFactory {
      auto master = std::make_shared<sim::RngStream>(std::move(rng));
      auto n = std::make_shared<int>(0);
      return [master, n] {
        return std::unique_ptr<workload::SessionScript>(
            new EditorSession(master->fork(std::to_string((*n)++))));
      };
    };
    d.table_pages = {{"Reader", "Front Page"},
                     {"Reader", "Article"},
                     {"Reader", "Search"},
                     {"Editor", "Article"},
                     {"Editor", "Save Edit"},
                     {"Editor", "Revisions"}};
    return d;
  }
};

}  // namespace

int main() {
  std::cout << "=== Custom application: a wiki on the wide-area testbed ===\n\n";

  WikiApp wiki;
  apps::AppDriver driver = wiki.driver();
  core::HarnessCalibration cal;
  cal.testbed.db_colocated = true;

  std::vector<std::unique_ptr<core::Experiment>> keep;
  std::vector<core::ConfigResult> results;
  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kQueryCaching, core::ConfigLevel::kAsyncUpdates}) {
    core::ExperimentSpec spec;
    spec.level = level;
    spec.duration = sim::sec(1200);
    spec.warmup = sim::sec(120);
    auto exp = std::make_unique<core::Experiment>(driver, spec, cal);
    exp->run();
    results.push_back(core::ConfigResult{level, &exp->results()});
    keep.push_back(std::move(exp));
  }

  core::print_paper_table(std::cout, driver, results);
  std::cout << "\nThe same ladder that served Pet Store and RUBiS applies unchanged:\n"
            << "article views and searches become edge-local; edits pay the centre\n"
            << "only under blocking push, and nothing under asynchronous updates.\n";
  return 0;
}

// RUBiS usage patterns: the §3.2 message. "Response times observed by
// clients significantly depend on client behaviour" — different service
// usage patterns benefit from different distribution decisions. This
// example runs RUBiS under browser-heavy, balanced, and bidder-heavy
// client mixes and shows which configuration each mix prefers.
//
// Run: ./build/examples/rubis_usage_patterns
#include <iostream>

#include "apps/rubis/rubis.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

int main() {
  apps::rubis::RubisApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::rubis_calibration();

  std::cout << "=== RUBiS: service usage patterns vs configuration choice ===\n\n"
            << "Remote-client mean response time (ms) per usage pattern, for three\n"
            << "client mixes (fraction of browsers vs bidders) under the blocking-push\n"
            << "and asynchronous-updates configurations.\n\n";

  for (double browser_fraction : {0.95, 0.80, 0.50}) {
    std::cout << "--- client mix: " << static_cast<int>(browser_fraction * 100)
              << "% browsers / " << static_cast<int>((1 - browser_fraction) * 100)
              << "% bidders ---\n";
    stats::TextTable table{{"configuration", "Remote Browser (ms)", "Remote Bidder (ms)"}};
    for (core::ConfigLevel level :
         {core::ConfigLevel::kCentralized, core::ConfigLevel::kStatefulComponentCaching,
          core::ConfigLevel::kQueryCaching, core::ConfigLevel::kAsyncUpdates}) {
      core::ExperimentSpec spec;
      spec.level = level;
      spec.duration = sim::sec(1200);
      spec.warmup = sim::sec(180);
      spec.browser_fraction = browser_fraction;
      core::Experiment exp{driver, spec, cal};
      exp.run();
      table.add_row({core::to_string(level),
                     stats::TextTable::cell_ms(exp.results().pattern_mean_ms(
                         "Browser", stats::ClientGroup::kRemote)),
                     stats::TextTable::cell_ms(exp.results().pattern_mean_ms(
                         "Bidder", stats::ClientGroup::kRemote))});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading the tables: browsers always want the caches; bidders are\n"
            << "actively hurt by the blocking push (they block while updates cross\n"
            << "the WAN) until asynchronous updates decouple them. A deployer can use\n"
            << "usage patterns to pick per-group access paths — the Mutable Services\n"
            << "idea the paper's project context describes.\n";
  return 0;
}

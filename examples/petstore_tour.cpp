// Pet Store tour: walks the paper's five-configuration ladder (§4.1–§4.5)
// on the Java Pet Store model, narrating what each design rule changes and
// showing the cache/network counters that explain the response times.
//
// Run: ./build/examples/petstore_tour
#include <iostream>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace mutsvc;

namespace {

const char* narrative(core::ConfigLevel level) {
  switch (level) {
    case core::ConfigLevel::kCentralized:
      return "Everything on the main server. Remote clients pay two WAN round\n"
             "trips of plain HTTP per page (~+400 ms).";
    case core::ConfigLevel::kRemoteFacade:
      return "Web components and stateful session beans move to the edges; entity\n"
             "access collapses into one bulk façade RMI; JNDI/remote stubs cached.\n"
             "Session pages become edge-local; data pages cost one WAN RMI.";
    case core::ConfigLevel::kStatefulComponentCaching:
      return "Read-mostly entity beans (Category/Product/Item/Inventory) gain\n"
             "read-only edge replicas with a blocking push protocol. Item and\n"
             "Shopping Cart go edge-local; buyers now block on Commit while\n"
             "updates cross the WAN.";
    case core::ConfigLevel::kQueryCaching:
      return "Aggregate query results (product/item listings) cached at the edges\n"
             "(pull-refresh for Pet Store). Category/Product go edge-local; the\n"
             "keyword Search still executes at the database.";
    case core::ConfigLevel::kAsyncUpdates:
      return "The blocking push becomes an asynchronous JMS topic + MDB façade.\n"
             "Commit returns at local speed; replicas converge moments later.";
  }
  return "";
}

}  // namespace

int main() {
  apps::petstore::PetStoreApp app;
  apps::AppDriver driver = app.driver();
  core::HarnessCalibration cal = core::petstore_calibration();

  std::cout << "=== Java Pet Store: the five-configuration ladder ===\n";

  std::vector<std::unique_ptr<core::Experiment>> keep;
  std::vector<core::ConfigResult> results;

  for (core::ConfigLevel level :
       {core::ConfigLevel::kCentralized, core::ConfigLevel::kRemoteFacade,
        core::ConfigLevel::kStatefulComponentCaching, core::ConfigLevel::kQueryCaching,
        core::ConfigLevel::kAsyncUpdates}) {
    std::cout << "\n--- " << core::to_string(level) << " ---\n" << narrative(level) << "\n";

    core::ExperimentSpec spec;
    spec.level = level;
    spec.duration = sim::sec(1200);
    spec.warmup = sim::sec(180);
    auto exp = std::make_unique<core::Experiment>(driver, spec, cal);
    exp->run();

    const auto& r = exp->results();
    auto cell = [&](const char* pattern, const char* page, stats::ClientGroup g) {
      return stats::TextTable::cell_ms(r.page_mean_ms(pattern, page, g));
    };
    std::cout << "  Item page  L/R: " << cell("Browser", "Item", stats::ClientGroup::kLocal)
              << "/" << cell("Browser", "Item", stats::ClientGroup::kRemote)
              << " ms   Category L/R: "
              << cell("Browser", "Category", stats::ClientGroup::kLocal) << "/"
              << cell("Browser", "Category", stats::ClientGroup::kRemote)
              << " ms   Commit L/R: "
              << cell("Buyer", "Commit Order", stats::ClientGroup::kLocal) << "/"
              << cell("Buyer", "Commit Order", stats::ClientGroup::kRemote) << " ms\n";

    comp::Runtime& rt = exp->runtime();
    std::cout << "  WAN messages: " << exp->network().wan_messages_sent()
              << ", RMI extra round trips: " << rt.rmi().extra_round_trips()
              << ", blocking pushes: " << rt.blocking_pushes()
              << ", async publishes: " << rt.async_publishes() << "\n";
    if (level >= core::ConfigLevel::kStatefulComponentCaching) {
      auto& cache = rt.ro_cache(exp->nodes().edge_servers[0], "Item");
      std::cout << "  edge1 Item replica: " << cache.hits() << " hits / " << cache.misses()
                << " misses (hit rate " << static_cast<int>(cache.hit_rate() * 100) << "%)\n";
    }
    if (level >= core::ConfigLevel::kQueryCaching) {
      auto& qc = rt.query_cache(exp->nodes().edge_servers[0]);
      std::cout << "  edge1 query cache: " << qc.hits() << " hits / " << qc.misses()
                << " misses\n";
    }
    std::cout << "  stale reads observed: " << rt.consistency().stale_reads() << " of "
              << rt.consistency().reads() << "\n";

    results.push_back(core::ConfigResult{level, &exp->results()});
    keep.push_back(std::move(exp));
  }

  std::cout << "\n=== Session averages across the ladder (Figure 7's series) ===\n";
  core::print_session_averages(std::cout, driver, results);
  return 0;
}

// lookahead: runs the §4 configuration ladder under the SimRace analyzer
// and emits the machine-readable "lookahead certificate" consumed by CI.
//
// The certificate underwrites ROADMAP item 2 (conservative parallel
// simulation): for every directed WAN link it records the minimum observed
// event-crossing time across the whole ladder, which must never undercut
// the link's declared propagation latency — the lookahead window a
// parallel executor would rely on. It also asserts zero cross-node races:
// no event touched another lookahead domain's state except through a
// delivered message.
//
// The runs are fully seeded and deterministic, so the emitted JSON is
// byte-stable: CI regenerates it and diffs against the checked-in
// LOOKAHEAD_cert.json. Exit status is the gate — nonzero when any rung
// reports a race, a lookahead violation, or a link whose minimum observed
// crossing is below its declared latency.
//
// Usage: lookahead [--out FILE]
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/design_rules.hpp"
#include "core/experiment.hpp"
#include "sim/simrace.hpp"
#include "sim/time.hpp"

namespace mutsvc {
namespace {

// Fixed, seed-pinned spec: the certificate must be reproducible bit for
// bit on every machine (same discipline as the golden tests).
constexpr std::uint64_t kSeed = 7;
constexpr int kDurationSec = 120;
constexpr int kWarmupSec = 10;

struct Rung {
  core::ConfigLevel level;
  const char* slug;
};

constexpr Rung kLadder[] = {
    {core::ConfigLevel::kCentralized, "centralized"},
    {core::ConfigLevel::kRemoteFacade, "remote-facade"},
    {core::ConfigLevel::kStatefulComponentCaching, "stateful-component-caching"},
    {core::ConfigLevel::kQueryCaching, "query-caching"},
    {core::ConfigLevel::kAsyncUpdates, "async-updates"},
};

struct RungResult {
  const Rung* rung = nullptr;
  simrace::Report report;
  std::vector<std::string> node_names;  // node id -> name, for the JSON

  [[nodiscard]] bool clean() const {
    if (report.races > 0 || report.lookahead_violations > 0) return false;
    for (const auto& [edge, stat] : report.wan_links) {
      if (stat.crossings > 0 && stat.min_observed_us < stat.declared_us) return false;
    }
    return true;
  }
};

RungResult run_rung(const Rung& rung) {
  simrace::reset();
  simrace::set_enabled(true);
  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = rung.level;
  spec.duration = sim::sec(kDurationSec);
  spec.warmup = sim::sec(kWarmupSec);
  spec.seed = kSeed;
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};
  exp.run();

  RungResult out;
  out.rung = &rung;
  out.report = simrace::report();
  net::Topology& topo = exp.network().topology();
  out.node_names.reserve(topo.node_count());
  for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
    out.node_names.push_back(topo.node(net::NodeId{i}).name);
  }
  simrace::set_enabled(false);
  simrace::reset();
  return out;
}

void emit_json(std::ostream& os, const std::vector<RungResult>& results, bool certified) {
  os << "{\n";
  os << "  \"schema\": \"mutsvc-lookahead-v1\",\n";
  os << "  \"app\": \"petstore\",\n";
  os << "  \"seed\": " << kSeed << ",\n";
  os << "  \"duration_s\": " << kDurationSec << ",\n";
  os << "  \"warmup_s\": " << kWarmupSec << ",\n";
  os << "  \"rungs\": [\n";
  for (std::size_t r = 0; r < results.size(); ++r) {
    const RungResult& res = results[r];
    const simrace::Report& rep = res.report;
    os << "    {\n";
    os << "      \"level\": " << static_cast<int>(res.rung->level) << ",\n";
    os << "      \"name\": \"" << res.rung->slug << "\",\n";
    os << "      \"scoped_accesses\": " << rep.scoped_accesses << ",\n";
    os << "      \"cross_domain_accesses\": " << rep.cross_domain_accesses << ",\n";
    os << "      \"message_edges\": " << rep.message_edges << ",\n";
    os << "      \"races\": " << rep.races << ",\n";
    os << "      \"lookahead_violations\": " << rep.lookahead_violations << ",\n";
    os << "      \"wan_links\": [\n";
    std::size_t i = 0;
    for (const auto& [edge, stat] : rep.wan_links) {
      auto name = [&](std::uint32_t n) -> std::string {
        return n < res.node_names.size() ? res.node_names[n] : "node-" + std::to_string(n);
      };
      os << "        {\"from\": \"" << name(edge.first) << "\", \"to\": \"" << name(edge.second)
         << "\", \"declared_us\": " << stat.declared_us
         << ", \"min_observed_us\": " << stat.min_observed_us
         << ", \"crossings\": " << stat.crossings << "}"
         << (++i < rep.wan_links.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (r + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"certified\": " << (certified ? "true" : "false") << "\n";
  os << "}\n";
}

int run_main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: lookahead [--out FILE]\n";
      return 2;
    }
  }

  std::vector<RungResult> results;
  bool certified = true;
  for (const Rung& rung : kLadder) {
    std::cerr << "lookahead: running rung " << static_cast<int>(rung.level) << " (" << rung.slug
              << ")...\n";
    results.push_back(run_rung(rung));
    const RungResult& res = results.back();
    if (!res.clean()) {
      certified = false;
      for (const std::string& f : res.report.findings) {
        std::cerr << "lookahead: [" << rung.slug << "] " << f << "\n";
      }
    }
  }

  std::ostringstream json;
  emit_json(json, results, certified);
  if (out_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream f(out_path, std::ios::trunc);
    if (!f) {
      std::cerr << "lookahead: cannot open " << out_path << "\n";
      return 2;
    }
    f << json.str();
  }

  if (!certified) {
    std::cerr << "lookahead: FAILED — races or lookahead violations recorded\n";
    return 1;
  }
  std::cerr << "lookahead: certified — zero races, every WAN link's min observed crossing >= "
               "declared latency\n";
  return 0;
}

}  // namespace
}  // namespace mutsvc

int main(int argc, char** argv) { return mutsvc::run_main(argc, argv); }

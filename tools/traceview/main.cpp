// traceview: renders one traced Pet Store page request as a causal span
// tree (client -> edge -> main), plus the flat additive category breakdown
// and the conformance verdict. Optionally dumps the trace as Chrome
// trace-event JSON for Perfetto / chrome://tracing.
//
// Usage:
//   traceview [--level N|name] [--page item|category|commitorder]
//             [--cold] [--chrome out.json]
//
// Exits non-zero when the trace does not conform (sum of flat totals !=
// measured response time) — the same invariant bench_breakdown enforces
// across all five configurations.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/petstore/petstore.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "stats/chrome_trace.hpp"
#include "stats/table.hpp"

using namespace mutsvc;

namespace {

struct Options {
  core::ConfigLevel level = core::ConfigLevel::kStatefulComponentCaching;
  std::string page = "commitorder";
  bool warm = true;
  std::string chrome_path;
};

core::ConfigLevel parse_level(const std::string& v) {
  if (v == "1" || v == "centralized") return core::ConfigLevel::kCentralized;
  if (v == "2" || v == "facade") return core::ConfigLevel::kRemoteFacade;
  if (v == "3" || v == "caching") return core::ConfigLevel::kStatefulComponentCaching;
  if (v == "4" || v == "querycache") return core::ConfigLevel::kQueryCaching;
  if (v == "5" || v == "async") return core::ConfigLevel::kAsyncUpdates;
  throw std::invalid_argument("traceview: unknown --level " + v +
                              " (want 1-5 or centralized|facade|caching|querycache|async)");
}

workload::PageRequest request_for(const std::string& page) {
  workload::PageRequest req;
  req.component = "PetStoreWeb";
  if (page == "item") {
    req.page = "Item";
    req.pattern = "Browser";
    req.method = "item";
    req.args = {db::Value{std::int64_t{1001001}}};
  } else if (page == "category") {
    req.page = "Category";
    req.pattern = "Browser";
    req.method = "category";
    req.args = {db::Value{std::int64_t{1}}};
  } else if (page == "commitorder") {
    req.page = "Commit Order";
    req.pattern = "Buyer";
    req.method = "commitorder";
    req.args = {db::Value{std::int64_t{1}}, db::Value{std::int64_t{1001001}}};
  } else {
    throw std::invalid_argument("traceview: unknown --page " + page +
                                " (want item|category|commitorder)");
  }
  return req;
}

void print_tree(const comp::TraceSink& sink, const net::Topology& topo,
                const stats::Span& span, int depth) {
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "- ["
            << to_string(span.kind) << "] " << (span.label.empty() ? "?" : span.label);
  if (span.src != span.dst) {
    std::cout << "  " << topo.node(net::NodeId{span.src}).name << " -> "
              << topo.node(net::NodeId{span.dst}).name;
  } else {
    std::cout << "  @" << topo.node(net::NodeId{span.src}).name;
  }
  std::cout << "  t=" << stats::TextTable::cell_fixed(
                   (span.start - sim::SimTime::origin()).as_millis(), 3)
            << "ms dur=" << stats::TextTable::cell_fixed(span.duration().as_millis(), 3)
            << "ms\n";
  for (const stats::Span* child : sink.children(span.id)) {
    print_tree(sink, topo, *child, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("traceview: " + arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--level") {
      opt.level = parse_level(value());
    } else if (arg == "--page") {
      opt.page = value();
    } else if (arg == "--cold") {
      opt.warm = false;
    } else if (arg == "--chrome") {
      opt.chrome_path = value();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: traceview [--level 1-5] [--page item|category|commitorder]"
                   " [--cold] [--chrome out.json]\n";
      return 0;
    } else {
      std::cerr << "traceview: unknown argument " << arg << " (try --help)\n";
      return 2;
    }
  }

  apps::petstore::PetStoreApp app;
  core::ExperimentSpec spec;
  spec.level = opt.level;
  spec.duration = sim::sec(1);
  spec.warmup = sim::Duration::zero();
  core::Experiment exp{app.driver(), spec, core::petstore_calibration()};

  const net::NodeId client = exp.nodes().remote_clients[0];
  const workload::PageRequest req = request_for(opt.page);

  if (opt.warm) {
    exp.simulator().spawn([](core::Experiment& e, net::NodeId c,
                             const workload::PageRequest& r) -> sim::Task<void> {
      comp::TraceSink warm;
      co_await e.execute_traced(c, r, warm);
    }(exp, client, req));
    exp.simulator().run_until();
    exp.runtime().reset_cache_stats();
  }

  comp::TraceSink sink;
  sim::Duration elapsed = sim::Duration::zero();
  exp.simulator().spawn([](core::Experiment& e, net::NodeId c, const workload::PageRequest& r,
                           comp::TraceSink& s, sim::Duration& out) -> sim::Task<void> {
    const sim::SimTime t0 = e.simulator().now();
    co_await e.execute_traced(c, r, s);
    out = e.simulator().now() - t0;
  }(exp, client, req, sink, elapsed));
  exp.simulator().run_until();

  net::Topology& topo = exp.network().topology();
  std::cout << "=== " << core::to_string(opt.level) << " / " << req.page << " ("
            << (opt.warm ? "warm" : "cold") << " caches, remote client) ===\n\n";
  std::cout << "Span tree (inclusive intervals):\n";
  for (const stats::Span* root : sink.children(0)) print_tree(sink, topo, *root, 1);

  std::cout << "\nFlat breakdown (exclusive, additive):\n";
  stats::TextTable table{{"category", "ms"}};
  for (std::size_t k = 0; k < static_cast<std::size_t>(comp::SpanKind::kCount_); ++k) {
    const auto kind = static_cast<comp::SpanKind>(k);
    if (sink.total(kind) == sim::Duration::zero()) continue;
    table.add_row({to_string(kind), stats::TextTable::cell_fixed(sink.total(kind).as_millis(), 3)});
  }
  table.add_row({"TOTAL", stats::TextTable::cell_fixed(sink.sum().as_millis(), 3)});
  table.print(std::cout);
  std::cout << "measured: " << stats::TextTable::cell_fixed(elapsed.as_millis(), 3) << " ms\n";

  if (!opt.chrome_path.empty()) {
    stats::ChromeTraceWriter chrome;
    for (std::uint32_t i = 0; i < topo.node_count(); ++i) {
      chrome.name_process(i, topo.node(net::NodeId{i}).name);
    }
    (void)chrome.offer(sink, std::string{core::to_string(opt.level)} + "/" + req.page);
    std::ofstream out{opt.chrome_path};
    chrome.write(out);
    std::cout << "chrome trace written to " << opt.chrome_path << "\n";
  }

  if (!sink.conforms(elapsed)) {
    std::cout << "\nCONFORMANCE FAIL: sum(spans) != measured response time\n";
    return 1;
  }
  std::cout << "\nconformance: sum(spans) == measured response time\n";
  return 0;
}

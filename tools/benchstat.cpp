// benchstat: compare two mutsvc-bench/v1 JSON files and fail on regression.
//
// Usage:
//   benchstat OLD.json NEW.json [--max-regression 0.25]
//
// Compares every throughput metric (`*_per_sec`) present in both files and
// prints an old/new/delta table for all shared metrics. Exits 1 when any
// shared throughput metric in NEW is more than --max-regression below OLD
// (default 25%, matching the CI perf-smoke gate). Deterministic metrics
// (no `wall_` prefix) are additionally required to match exactly — a
// changed `events` count means the simulation trajectory changed, which is
// a correctness bug, not a perf delta. Histogram-derived metrics (`hist_`
// prefix or `_bucket` suffix convention from perfjson.hpp) are simulated
// counts: strictly deterministic, never throughput-gated.
//
// The parser handles exactly the subset of JSON that perfjson.hpp emits
// (string keys, numeric values, fixed nesting); it is not a general JSON
// parser and does not try to be.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchFile {
  // "benchmark.name/metric_name" -> value, in file order.
  std::vector<std::pair<std::string, double>> metrics;
};

// Minimal scanner for the perfjson.hpp output shape: walks the text
// collecting "name" fields (benchmark scope) and numeric key/value pairs
// inside "metrics" objects.
bool parse_bench_json(const std::string& path, BenchFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "benchstat: cannot open " << path << "\n";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::string scope;
  std::size_t i = 0;
  auto read_string = [&](std::size_t& pos) {
    std::string s;
    ++pos;  // opening quote
    while (pos < text.size() && text[pos] != '"') s += text[pos++];
    ++pos;  // closing quote
    return s;
  };
  while (i < text.size()) {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    std::string key = read_string(i);
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= text.size() || text[i] != ':') continue;
    ++i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i < text.size() && text[i] == '"') {
      std::string value = read_string(i);
      if (key == "name") scope = value;
    } else if (i < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '-')) {
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + i, &end);
      i = static_cast<std::size_t>(end - text.c_str());
      if (key != "schema" && !scope.empty()) {
        out.metrics.emplace_back(scope + "/" + key, v);
      }
    }
  }
  return true;
}

bool is_throughput(const std::string& name) {
  return name.size() >= 8 && name.compare(name.size() - 8, 8, "_per_sec") == 0;
}

bool is_wall(const std::string& metric_part) {
  return metric_part.rfind("wall_", 0) == 0;
}

// Fixed-bucket histogram exports (stats::Histogram via perfjson
// add_histogram): bucket counts on the simulated clock. They are held to
// the bit-identical determinism bar and are exempt from the throughput
// gate even if a name ever matches `*_per_sec`.
bool is_histogram(const std::string& metric_part) {
  return metric_part.rfind("hist_", 0) == 0 ||
         metric_part.find("_bucket") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-regression" && i + 1 < argc) {
      max_regression = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: benchstat OLD.json NEW.json [--max-regression 0.25]\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::cerr << "usage: benchstat OLD.json NEW.json [--max-regression 0.25]\n";
    return 2;
  }

  BenchFile oldf, newf;
  if (!parse_bench_json(files[0], oldf) || !parse_bench_json(files[1], newf)) return 2;

  std::map<std::string, double> newmap(newf.metrics.begin(), newf.metrics.end());

  std::printf("%-52s %14s %14s %9s\n", "metric", "old", "new", "delta");
  bool regressed = false;
  bool determinism_broken = false;
  for (const auto& [name, oldv] : oldf.metrics) {
    auto it = newmap.find(name);
    if (it == newmap.end()) continue;
    const double newv = it->second;
    const double delta = oldv != 0.0 ? (newv - oldv) / oldv : 0.0;
    std::printf("%-52s %14.6g %14.6g %+8.1f%%\n", name.c_str(), oldv, newv, delta * 100.0);

    const std::string metric_part = name.substr(name.find('/') + 1);
    if (is_throughput(name) && !is_histogram(metric_part) && oldv > 0.0 &&
        newv < oldv * (1.0 - max_regression)) {
      std::fprintf(stderr, "benchstat: REGRESSION %s: %.6g -> %.6g (limit -%.0f%%)\n",
                   name.c_str(), oldv, newv, max_regression * 100.0);
      regressed = true;
    }
    if (!is_wall(metric_part) && oldv != newv) {
      std::fprintf(stderr,
                   "benchstat: DETERMINISM %s changed: %.17g -> %.17g "
                   "(non-wall metrics must be bit-identical)\n",
                   name.c_str(), oldv, newv);
      determinism_broken = true;
    }
  }

  if (regressed || determinism_broken) return 1;
  std::cout << "benchstat: OK (max regression " << max_regression * 100.0 << "%)\n";
  return 0;
}

// mutsvc_run — command-line experiment runner.
//
//   mutsvc_run <petstore|rubis|gridviz> [options]
//
//   --level <1..5|name>     configuration rung (default 5 = async updates)
//   --descriptor <file>     deploy from an extended deployment descriptor
//                           (overrides --level)
//   --emit-descriptor       print the rung's deployment descriptor and exit
//   --duration <seconds>    simulated run length   (default 900)
//   --warmup <seconds>      warm-up to discard     (default 120)
//   --rate <req/s>          combined offered load  (default 30)
//   --seed <n>              RNG seed               (default 42)
//   --sessions              print session averages instead of the page table
//   --utilization           also print per-server CPU utilization
//   --metrics               also print per-node metrics (counters, cache and
//                           topic gauges, latency histogram, time series)
//
// Examples:
//   mutsvc_run rubis --level 3
//   mutsvc_run petstore --emit-descriptor --level 5 > plan.desc
//   mutsvc_run petstore --descriptor plan.desc --sessions
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/gridviz/gridviz.hpp"
#include "apps/petstore/petstore.hpp"
#include "apps/rubis/rubis.hpp"
#include "component/descriptor.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"

using namespace mutsvc;

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: mutsvc_run <petstore|rubis|gridviz> [--level 1..5] "
               "[--descriptor file] [--emit-descriptor] [--duration s] [--warmup s] "
               "[--rate r] [--seed n] [--sessions] [--utilization] [--metrics]\n";
  std::exit(error != nullptr ? 2 : 0);
}

core::ConfigLevel parse_level(const std::string& s) {
  if (s == "1" || s == "centralized") return core::ConfigLevel::kCentralized;
  if (s == "2" || s == "facade" || s == "remote-facade") return core::ConfigLevel::kRemoteFacade;
  if (s == "3" || s == "caching" || s == "stateful-component-caching") {
    return core::ConfigLevel::kStatefulComponentCaching;
  }
  if (s == "4" || s == "query-caching") return core::ConfigLevel::kQueryCaching;
  if (s == "5" || s == "async" || s == "asynchronous-updates") {
    return core::ConfigLevel::kAsyncUpdates;
  }
  usage("unknown --level value");
}

struct Options {
  std::string app;
  core::ConfigLevel level = core::ConfigLevel::kAsyncUpdates;
  std::string descriptor_file;
  bool emit_descriptor = false;
  double duration_s = 900;
  double warmup_s = 120;
  double rate = 30;
  std::uint64_t seed = 42;
  bool sessions = false;
  bool utilization = false;
  bool metrics = false;
};

Options parse_args(int argc, char** argv) {
  if (argc < 2) usage("missing application name");
  Options opt;
  opt.app = argv[1];
  if (opt.app == "-h" || opt.app == "--help") usage();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--level") {
      opt.level = parse_level(value());
    } else if (arg == "--descriptor") {
      opt.descriptor_file = value();
    } else if (arg == "--emit-descriptor") {
      opt.emit_descriptor = true;
    } else if (arg == "--duration") {
      opt.duration_s = std::stod(value());
    } else if (arg == "--warmup") {
      opt.warmup_s = std::stod(value());
    } else if (arg == "--rate") {
      opt.rate = std::stod(value());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--sessions") {
      opt.sessions = true;
    } else if (arg == "--utilization") {
      opt.utilization = true;
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return opt;
}

int run_with(const apps::AppDriver& driver, const core::HarnessCalibration& cal,
             const Options& opt) {
  core::ExperimentSpec spec;
  spec.level = opt.level;
  spec.duration = sim::Duration::seconds(opt.duration_s);
  spec.warmup = sim::Duration::seconds(opt.warmup_s);
  spec.total_request_rate = opt.rate;
  spec.seed = opt.seed;

  if (!opt.descriptor_file.empty()) {
    std::ifstream in{opt.descriptor_file};
    if (!in) {
      std::cerr << "error: cannot read " << opt.descriptor_file << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // Node names must resolve against a topology; the testbed builder is
    // deterministic, so a probe experiment's topology assigns the same node
    // ids the real run will use.
    core::ExperimentSpec probe_spec = spec;
    probe_spec.custom_plan = nullptr;
    core::Experiment probe{driver, probe_spec, cal};
    comp::DeploymentPlan plan = comp::parse_descriptor(text, probe.network().topology());
    spec.custom_plan = [plan](const core::TestbedNodes&) { return plan; };
  }

  if (opt.emit_descriptor) {
    core::ExperimentSpec probe_spec = spec;
    probe_spec.custom_plan = nullptr;
    core::Experiment probe{driver, probe_spec, cal};
    std::cout << comp::serialize_descriptor(probe.runtime().plan(),
                                            probe.network().topology());
    return 0;
  }

  core::Experiment exp{driver, spec, cal};
  if (opt.metrics) exp.enable_metrics(sim::sec(60));
  if (!opt.descriptor_file.empty()) {
    std::cout << "deployment: " << opt.descriptor_file << " (descriptor-driven)\n";
  }
  std::cerr << "running " << driver.name << " / "
            << (opt.descriptor_file.empty() ? core::to_string(opt.level) : "custom descriptor")
            << " for "
            << opt.duration_s << "s simulated (seed " << opt.seed << ")...\n";
  exp.run();

  std::vector<core::ConfigResult> results{{opt.level, &exp.results()}};
  if (opt.sessions) {
    core::print_session_averages(std::cout, driver, results);
  } else {
    core::print_paper_table(std::cout, driver, results);
  }
  if (opt.utilization) {
    const auto& n = exp.nodes();
    std::cout << "\nCPU utilization: main "
              << static_cast<int>(exp.cpu_utilization(n.main_server) * 100) << "%";
    for (std::size_t i = 0; i < n.edge_servers.size(); ++i) {
      std::cout << ", edge" << i + 1 << " "
                << static_cast<int>(exp.cpu_utilization(n.edge_servers[i]) * 100) << "%";
    }
    if (n.db_node != n.main_server) {
      std::cout << ", db " << static_cast<int>(exp.cpu_utilization(n.db_node) * 100) << "%";
    }
    std::cout << "\n";
  }
  if (opt.metrics) {
    std::cout << "\n";
    core::print_all_metrics(std::cout, exp.runtime().metrics_by_node(),
                            exp.network().topology());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);

  if (opt.app == "petstore") {
    apps::petstore::PetStoreApp app;
    return run_with(app.driver(), core::petstore_calibration(), opt);
  }
  if (opt.app == "rubis") {
    apps::rubis::RubisApp app;
    return run_with(app.driver(), core::rubis_calibration(), opt);
  }
  if (opt.app == "gridviz") {
    apps::gridviz::GridVizApp app;
    core::HarnessCalibration cal;
    cal.testbed.db_colocated = true;
    return run_with(app.driver(), cal, opt);
  }
  usage(("unknown application " + opt.app).c_str());
}

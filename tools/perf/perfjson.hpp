#pragma once

// Host-side performance measurement + benchstat-style JSON emission.
//
// Lives under tools/ (not src/) on purpose: wall-clock time sources are
// banned from simulation code by simlint's wall-clock rule, and this header
// is the one sanctioned place where benches touch the host clock. Bench
// sources include it and call the wrappers; no banned token appears in
// linted directories.
//
// JSON convention: metric names prefixed `wall_` are host-dependent
// (wall-clock durations, throughput per wall second, RSS, worker count) and
// are exempt from the bit-identical determinism contract; every other
// metric must be identical across runs and MUTSVC_JOBS values. Tools and
// tests that diff bench JSON ignore `wall_*` lines only. Metrics prefixed
// `hist_` (emitted by add_histogram) are fixed-bucket counts on the
// simulated clock: strictly deterministic and never throughput-gated.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "stats/metrics.hpp"

namespace mutsvc::perf {

/// Wall-clock stopwatch (monotonic).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size of this process, in bytes.
[[nodiscard]] inline std::int64_t peak_rss_bytes() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // Linux: ru_maxrss in KiB
}

struct Metric {
  std::string name;
  double value = 0.0;
};

struct Benchmark {
  std::string name;
  std::vector<Metric> metrics;

  Benchmark& add(std::string metric, double value) {
    metrics.push_back(Metric{std::move(metric), value});
    return *this;
  }
};

/// Formats a double with enough digits to round-trip, without trailing
/// noise for integral values ("5860249" rather than "5.86025e+06").
[[nodiscard]] inline std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && v > -1e15 && v < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Exports a fixed-bucket histogram as deterministic bench metrics:
/// `hist_<name>_le_<bound>` per bucket, `hist_<name>_le_inf` for the
/// overflow bucket, plus `hist_<name>_count` and `hist_<name>_sum`. The
/// counts come off the simulated clock, so benchstat holds them to the
/// bit-identical bar (and never throughput-gates them).
inline Benchmark& add_histogram(Benchmark& b, const std::string& name,
                                const stats::Histogram& h) {
  for (std::size_t i = 0; i < h.bounds().size(); ++i) {
    b.add("hist_" + name + "_le_" + format_number(h.bounds()[i]),
          static_cast<double>(h.bucket(i)));
  }
  b.add("hist_" + name + "_le_inf", static_cast<double>(h.bucket(h.bounds().size())));
  b.add("hist_" + name + "_count", static_cast<double>(h.count()));
  b.add("hist_" + name + "_sum", h.sum());
  return b;
}

[[nodiscard]] inline std::string to_json(const std::string& bench,
                                         const std::vector<Benchmark>& benchmarks) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mutsvc-bench/v1\",\n  \"bench\": \"" << bench
     << "\",\n  \"benchmarks\": [\n";
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    os << "    {\"name\": \"" << benchmarks[b].name << "\", \"metrics\": {\n";
    const auto& ms = benchmarks[b].metrics;
    for (std::size_t m = 0; m < ms.size(); ++m) {
      os << "      \"" << ms[m].name << "\": " << format_number(ms[m].value)
         << (m + 1 < ms.size() ? "," : "") << "\n";
    }
    os << "    }}" << (b + 1 < benchmarks.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

inline void write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<Benchmark>& benchmarks) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("perfjson: cannot write " + path);
  out << to_json(bench, benchmarks);
}

/// Output path override: $MUTSVC_BENCH_JSON when set, else `fallback`.
[[nodiscard]] inline std::string bench_json_path_or(const char* fallback) {
  if (const char* env = std::getenv("MUTSVC_BENCH_JSON")) {
    if (*env != '\0') return env;
  }
  return fallback;
}

}  // namespace mutsvc::perf

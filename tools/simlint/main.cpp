// simlint — determinism and coroutine-hazard lint for the mutsvc tree.
//
// Usage: simlint [options] <file-or-dir>...
//   --json               print findings as simlint-v2 JSON (machine-readable)
//   --report <file>      also write the JSON report to <file>
//   --fix-suppressions   dry run: print each finding's line with the exact
//                        trailing `// simlint:allow(...)` comment to paste
//   --list-rules         print the rule set and exit
//   --quiet              suppress the findings listing (exit code only)
//
// Exit status: 0 when clean, 1 when findings remain, 2 on usage error.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "simlint/lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool json = false;
  bool quiet = false;
  bool fix_suppressions = false;
  std::string report_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--fix-suppressions") {
      fix_suppressions = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "simlint: --report needs a file argument\n";
        return 2;
      }
      report_file = argv[++i];
    } else if (arg == "--list-rules") {
      for (const simlint::RuleInfo& r : simlint::rules()) {
        std::cout << r.name << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: simlint [--json] [--quiet] [--fix-suppressions] "
                   "[--report <file>] [--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "simlint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "simlint: no files or directories given (try --help)\n";
    return 2;
  }

  const std::vector<simlint::Finding> findings = simlint::lint_paths(paths);
  if (fix_suppressions) {
    simlint::print_fix_suppressions(std::cout, findings);
  } else if (!quiet) {
    if (json) {
      simlint::print_json(std::cout, findings);
    } else {
      simlint::print_text(std::cout, findings);
      std::cout << (findings.empty() ? "simlint: clean\n"
                                     : "simlint: " + std::to_string(findings.size()) +
                                           " finding(s)\n");
    }
  }
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    if (!out) {
      std::cerr << "simlint: cannot write report to " << report_file << "\n";
      return 2;
    }
    simlint::print_json(out, findings);
  }
  return findings.empty() ? 0 : 1;
}

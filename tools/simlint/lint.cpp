#include "simlint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace simlint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool qual_char(char c) { return ident_char(c) || c == ':'; }

/// True when the quote at src[i] opens a raw string literal: `R"..."` with
/// an optional encoding prefix (u8R, uR, UR, LR). The character before the
/// whole prefix must not extend an identifier (`fooR"..."` is a plain
/// string preceded by an identifier, not a raw string).
bool raw_string_open(const std::string& src, std::size_t i) {
  if (i == 0 || src[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // index of 'R'
  if (p >= 2 && src[p - 2] == 'u' && src[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (src[p - 1] == 'u' || src[p - 1] == 'U' || src[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !ident_char(src[p - 1]);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Splits `src` into lines twice: verbatim, and with comments plus
/// string/char literal *contents* blanked to spaces (so tokens inside them
/// never match). Line structure is preserved exactly.
void split_and_blank(const std::string& src, std::vector<std::string>& raw,
                     std::vector<std::string>& code) {
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // raw string closing delimiter: )DELIM"
  std::string rline, cline;
  auto flush = [&] {
    raw.push_back(rline);
    code.push_back(cline);
    rline.clear();
    cline.clear();
  };
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      flush();
      continue;
    }
    rline.push_back(c);
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          cline.push_back(' ');
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          cline.push_back(' ');
        } else if (c == '"') {
          // R"delim( ... )delim", with optional encoding prefix (u8R"...",
          // LR"...", ...). Misclassifying a raw string as a plain string
          // mishandles embedded quotes/backslashes and leaks its contents
          // into the scanned code — a latent false-positive source.
          if (raw_string_open(src, i)) {
            std::size_t p = i + 1;
            std::string delim;
            while (p < src.size() && src[p] != '(' && src[p] != '\n') delim.push_back(src[p++]);
            raw_delim = ")" + delim + "\"";
            st = St::kRawString;
          } else {
            st = St::kString;
          }
          cline.push_back('"');
        } else if (c == '\'' && !(i > 0 && ident_char(src[i - 1]))) {
          // Skip digit separators (1'000'000): a quote after an identifier
          // character is not a char literal.
          st = St::kChar;
          cline.push_back('\'');
        } else {
          cline.push_back(c);
        }
        break;
      case St::kLineComment:
        cline.push_back(' ');
        break;
      case St::kBlockComment:
        cline.push_back(' ');
        if (c == '/' && i > 0 && src[i - 1] == '*') st = St::kCode;
        break;
      case St::kString:
        if (c == '\\') {
          cline.push_back(' ');
          if (next != '\0' && next != '\n') {
            rline.push_back(next);
            cline.push_back(' ');
            ++i;
          }
        } else if (c == '"') {
          cline.push_back('"');
          st = St::kCode;
        } else {
          cline.push_back(' ');
        }
        break;
      case St::kChar:
        if (c == '\\') {
          cline.push_back(' ');
          if (next != '\0' && next != '\n') {
            rline.push_back(next);
            cline.push_back(' ');
            ++i;
          }
        } else if (c == '\'') {
          cline.push_back('\'');
          st = St::kCode;
        } else {
          cline.push_back(' ');
        }
        break;
      case St::kRawString:
        cline.push_back(' ');
        if (c == '"' && rline.size() >= raw_delim.size() &&
            rline.compare(rline.size() - raw_delim.size(), raw_delim.size(), raw_delim) == 0) {
          st = St::kCode;
        }
        break;
    }
  }
  flush();
}

/// Whole-identifier search. `ident` may be qualified ("std::time"); when
/// `require_call`, the match must be followed by '(' (after spaces).
bool has_token(const std::string& line, const std::string& ident, bool require_call) {
  std::size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    std::size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) {
      if (!require_call) return true;
      while (end < line.size() && (line[end] == ' ' || line[end] == '\t')) ++end;
      if (end < line.size() && line[end] == '(') return true;
    }
    pos += ident.size();
  }
  return false;
}

struct FileCtx {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::set<std::string> file_allowed;
  std::vector<std::set<std::string>> line_allowed;

  [[nodiscard]] bool allowed(int line, const std::string& rule) const {
    auto in = [&](const std::set<std::string>& s) {
      return s.count(rule) != 0 || s.count("*") != 0;
    };
    if (in(file_allowed)) return true;
    auto at = [&](int l) {
      return l >= 1 && l <= static_cast<int>(line_allowed.size()) && in(line_allowed[l - 1]);
    };
    return at(line) || at(line - 1);
  }

  [[nodiscard]] bool path_contains(const std::string& suffix) const {
    return path.find(suffix) != std::string::npos;
  }
};

void parse_allows(FileCtx& ctx) {
  ctx.line_allowed.resize(ctx.raw.size());
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    const std::string& line = ctx.raw[i];
    for (const char* marker : {"simlint:allow-file(", "simlint:allow("}) {
      std::size_t pos = line.find(marker);
      if (pos == std::string::npos) continue;
      pos += std::string(marker).size();
      std::size_t close = line.find(')', pos);
      if (close == std::string::npos) continue;
      std::istringstream rules_in(line.substr(pos, close - pos));
      std::string rule;
      const bool file_wide = std::string(marker).find("allow-file") != std::string::npos;
      while (std::getline(rules_in, rule, ',')) {
        rule = trim(rule);
        if (rule.empty()) continue;
        if (file_wide) {
          ctx.file_allowed.insert(rule);
        } else {
          ctx.line_allowed[i].insert(rule);
        }
      }
    }
  }
}

void add_finding(std::vector<Finding>& out, const FileCtx& ctx, int line, const std::string& rule,
                 std::string message) {
  if (ctx.allowed(line, rule)) return;
  out.push_back(Finding{ctx.path, line, rule, std::move(message)});
}

// --- rule: wall-clock --------------------------------------------------------

void rule_wall_clock(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.path_contains("sim/time.hpp")) return;
  struct Tok {
    const char* t;
    bool call;
  };
  static const Tok kTokens[] = {{"system_clock", false},  {"steady_clock", false},
                                {"high_resolution_clock", false},
                                {"gettimeofday", true},   {"clock_gettime", true},
                                {"timespec_get", true},   {"std::time", true}};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    for (const Tok& tok : kTokens) {
      if (has_token(ctx.code[i], tok.t, tok.call)) {
        add_finding(out, ctx, static_cast<int>(i + 1), "wall-clock",
                    std::string("wall-clock time source '") + tok.t +
                        "' — simulated code must use Simulator::now()");
      }
    }
  }
}

// --- rule: raw-random --------------------------------------------------------

void rule_raw_random(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.path_contains("sim/random.hpp")) return;
  struct Tok {
    const char* t;
    bool call;
  };
  static const Tok kTokens[] = {{"random_device", false}, {"mt19937", false},
                                {"mt19937_64", false},    {"minstd_rand", false},
                                {"drand48", true},        {"lrand48", true},
                                {"random_shuffle", false}, {"rand", true},
                                {"srand", true}};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    for (const Tok& tok : kTokens) {
      if (has_token(ctx.code[i], tok.t, tok.call)) {
        add_finding(out, ctx, static_cast<int>(i + 1), "raw-random",
                    std::string("raw randomness '") + tok.t +
                        "' — draw from a named sim::RngStream instead");
      }
    }
  }
}

// --- rule: unordered-iter ----------------------------------------------------

/// Names of variables declared (on one line) with an unordered container
/// type in this file.
std::set<std::string> unordered_names(const FileCtx& ctx) {
  static const char* kTypes[] = {"unordered_map<", "unordered_multimap<", "unordered_set<",
                                 "unordered_multiset<"};
  std::set<std::string> names;
  for (const std::string& line : ctx.code) {
    for (const char* type : kTypes) {
      std::size_t pos = line.find(type);
      while (pos != std::string::npos) {
        std::size_t p = pos + std::string(type).size() - 1;  // at '<'
        int depth = 0;
        while (p < line.size()) {
          if (line[p] == '<') ++depth;
          if (line[p] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++p;
        }
        if (p < line.size() && depth == 0) {
          ++p;  // past '>'
          while (p < line.size() &&
                 (line[p] == ' ' || line[p] == '&' || line[p] == '*')) {
            ++p;
          }
          std::string name;
          while (p < line.size() && ident_char(line[p])) name.push_back(line[p++]);
          if (!name.empty() && name != "const") names.insert(name);
        }
        pos = line.find(type, pos + 1);
      }
    }
  }
  return names;
}

void rule_unordered_iter(const FileCtx& ctx, std::vector<Finding>& out) {
  const std::set<std::string> names = unordered_names(ctx);
  if (names.empty()) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (!has_token(line, "for", false)) continue;
    // Range-for: extract the expression between ':' and the closing ')'.
    std::size_t open = line.find('(', line.find("for"));
    if (open != std::string::npos) {
      int depth = 0;
      std::size_t colon = std::string::npos, close = std::string::npos;
      for (std::size_t p = open; p < line.size(); ++p) {
        if (line[p] == '(') ++depth;
        if (line[p] == ')') {
          --depth;
          if (depth == 0) {
            close = p;
            break;
          }
        }
        if (line[p] == ':' && depth == 1 && colon == std::string::npos &&
            (p + 1 >= line.size() || line[p + 1] != ':') && (p == 0 || line[p - 1] != ':')) {
          colon = p;
        }
      }
      if (colon != std::string::npos && close != std::string::npos && close > colon) {
        std::string expr = trim(line.substr(colon + 1, close - colon - 1));
        while (!expr.empty() && (expr.front() == '*' || expr.front() == '&')) {
          expr.erase(expr.begin());
        }
        if (names.count(expr) != 0) {
          add_finding(out, ctx, static_cast<int>(i + 1), "unordered-iter",
                      "iteration over unordered container '" + expr +
                          "' — order is unspecified and can leak into results");
        }
      }
    }
    // Iterator-style: for (auto it = name.begin(); ...
    for (const std::string& name : names) {
      if (line.find(name + ".begin()") != std::string::npos ||
          line.find(name + ".cbegin()") != std::string::npos) {
        add_finding(out, ctx, static_cast<int>(i + 1), "unordered-iter",
                    "iteration over unordered container '" + name +
                        "' — order is unspecified and can leak into results");
      }
    }
  }
}

// --- rules: lost-task / nodiscard-task ---------------------------------------

/// Locates a `Task<` occurrence and expands it to the full qualified name
/// start (e.g. the 's' of "sim::Task"). Returns npos when none.
std::size_t find_task(const std::string& line, std::size_t from, std::size_t* name_begin) {
  std::size_t pos = line.find("Task<", from);
  while (pos != std::string::npos) {
    std::size_t begin = pos;
    while (begin > 0 && qual_char(line[begin - 1])) --begin;
    // The qualified token must end in "Task" (not e.g. "MyTask"-unlikely but
    // accept it: anything ending in Task is a coroutine task by convention
    // in this codebase).
    if (begin == pos || line.compare(begin, pos - begin, "sim::") == 0 ||
        line.rfind("::", pos) == pos - 2 || !ident_char(line[pos - 1])) {
      *name_begin = begin;
      return pos;
    }
    pos = line.find("Task<", pos + 1);
  }
  return std::string::npos;
}

/// From '<' at `open`, returns the index just past the matching '>', or npos.
std::size_t skip_template_args(const std::string& line, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < line.size(); ++p) {
    if (line[p] == '<') ++depth;
    if (line[p] == '>') {
      --depth;
      if (depth == 0) return p + 1;
    }
  }
  return std::string::npos;
}

bool contains_any(const std::string& s, std::initializer_list<const char*> words) {
  for (const char* w : words) {
    if (has_token(s, w, false)) return true;
  }
  return false;
}

void rule_lost_task(const FileCtx& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    std::size_t name_begin = 0;
    std::size_t pos = find_task(line, 0, &name_begin);
    if (pos == std::string::npos) continue;
    const std::string before = line.substr(0, name_begin);
    if (contains_any(before, {"return", "co_return", "co_await", "using", "typedef", "class",
                              "struct", "template", "friend"})) {
      continue;
    }
    if (before.find("->") != std::string::npos) continue;  // trailing return type
    std::size_t after = skip_template_args(line, pos + 4);
    if (after == std::string::npos) continue;
    while (after < line.size() && (line[after] == ' ' || line[after] == '&')) ++after;
    std::string name;
    while (after < line.size() && ident_char(line[after])) name.push_back(line[after++]);
    if (name.empty()) continue;
    while (after < line.size() && line[after] == ' ') ++after;
    // Variable with an initializer; `Task<..> name(...)` and bare `name;`
    // declarations are skipped (function declarations look the same).
    if (after >= line.size() || (line[after] != '=' && line[after] != '{')) continue;
    // Used anywhere else (co_await t, std::move(t), t.release(), spawn arg)?
    bool used = false;
    for (std::size_t j = 0; j < ctx.code.size() && !used; ++j) {
      if (j == i) {
        // Same-line use after the initializer (e.g. `Task<void> t = f(); co_await t;`).
        std::size_t p = line.find(';', after);
        if (p != std::string::npos && has_token(line.substr(p), name, false)) used = true;
        continue;
      }
      if (has_token(ctx.code[j], name, false)) used = true;
    }
    if (!used) {
      add_finding(out, ctx, static_cast<int>(i + 1), "lost-task",
                  "task '" + name +
                      "' is created but never co_awaited, moved, released, or spawned — "
                      "a lazy task that is dropped never runs");
    }
  }
}

void rule_nodiscard_task(const FileCtx& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    std::size_t name_begin = 0;
    std::size_t pos = find_task(line, 0, &name_begin);
    if (pos == std::string::npos) continue;
    const std::string before = line.substr(0, name_begin);
    if (contains_any(before, {"return", "co_return", "co_await", "using", "typedef", "class",
                              "struct", "template", "friend", "operator", "throw"})) {
      continue;
    }
    if (before.find("->") != std::string::npos) continue;  // lambda return type
    if (before.find('(') != std::string::npos) continue;   // parameter / argument position
    std::size_t after = skip_template_args(line, pos + 4);
    if (after == std::string::npos) continue;
    while (after < line.size() && (line[after] == ' ' || line[after] == '&')) ++after;
    std::string name;
    while (after < line.size() && ident_char(line[after])) name.push_back(line[after++]);
    // Qualified definitions (Type::method) belong to a declaration checked
    // at the declaration site.
    if (after + 1 < line.size() && line[after] == ':' && line[after + 1] == ':') continue;
    if (name.empty() || after >= line.size() || line[after] != '(') continue;
    // A declaration: check [[nodiscard]] on this line (before the type) or
    // the previous non-blank line.
    if (before.find("[[nodiscard]]") != std::string::npos) continue;
    bool prev_has = false;
    for (std::size_t j = i; j > 0; --j) {
      const std::string prev = trim(ctx.code[j - 1]);
      if (prev.empty()) continue;
      prev_has = prev.find("[[nodiscard]]") != std::string::npos &&
                 prev.find(';') == std::string::npos && prev.find('}') == std::string::npos;
      break;
    }
    if (prev_has) continue;
    add_finding(out, ctx, static_cast<int>(i + 1), "nodiscard-task",
                "Task-returning function '" + name +
                    "' lacks [[nodiscard]] — discarding a lazy task silently drops the work");
  }
}

// --- rule: lock-balance ------------------------------------------------------

void rule_lock_balance(const FileCtx& ctx, std::vector<Finding>& out) {
  std::vector<int> acquire_lines;
  bool any_release = false;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (line.find(".acquire(") != std::string::npos ||
        line.find("->acquire(") != std::string::npos) {
      acquire_lines.push_back(static_cast<int>(i + 1));
    }
    if (has_token(line, "release", true) || has_token(line, "unlock", true)) {
      any_release = true;
    }
  }
  if (any_release) return;
  for (int line : acquire_lines) {
    add_finding(out, ctx, line, "lock-balance",
                "lock acquired here but this file never calls release() — "
                "no path can release it");
  }
}

// --- rule: sim-shared-across-threads -----------------------------------------

/// The simulation kernel executes single-threaded by default: a Simulator,
/// its event heap, and everything hanging off it must be confined to one
/// thread. A file that both names the Simulator type and spawns OS threads
/// is the signature of sharing a simulation across threads. The sanctioned
/// crossing points are (a) core/sweep.cpp, which fans out *whole trials* —
/// each thread owns its own Simulator — and its test, and (b)
/// sim/parallel.cpp, the windowed lookahead-domain executor, where each
/// worker owns one domain's shard of a single Simulator and cross-domain
/// traffic moves only through index-addressed barrier outboxes. Both carry
/// explicit allow markers; everything else must keep simulation state off
/// OS threads.
void rule_sim_shared_across_threads(const FileCtx& ctx, std::vector<Finding>& out) {
  bool names_simulator = false;
  for (const std::string& line : ctx.code) {
    if (has_token(line, "Simulator", false)) {
      names_simulator = true;
      break;
    }
  }
  if (!names_simulator) return;
  static const char* kThreadTokens[] = {"std::thread", "std::jthread"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    for (const char* tok : kThreadTokens) {
      if (has_token(ctx.code[i], tok, false)) {
        add_finding(out, ctx, static_cast<int>(i + 1), "sim-shared-across-threads",
                    std::string("'") + tok +
                        "' in a file that names sim::Simulator — simulation state is "
                        "thread-confined; parallelize whole trials via core::sweep or "
                        "within-trial windows via the sim/parallel.cpp executor instead");
      }
    }
  }
}

// --- rule: cross-node-state --------------------------------------------------

/// Per-node replica state (read-only caches, query caches, JDBC clients,
/// store-and-forward write queues) lives in node-keyed containers. Under
/// per-node event queues (ROADMAP item 2) reaching into one of those
/// containers directly is how an event on node A silently touches node B's
/// state without a Network/Topic edge bounding the lookahead window. The
/// sanctioned doors are the node-checked accessors; any direct subscript /
/// member call on a node-keyed container in component/cache/db code is
/// flagged and must carry an explicit allow.
void rule_cross_node_state(const FileCtx& ctx, std::vector<Finding>& out) {
  if (!ctx.path_contains("component/") && !ctx.path_contains("cache/") &&
      !ctx.path_contains("db/")) {
    return;
  }
  static const char* kSuffixes[] = {"caches_", "clients_", "queues_"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (const char* sfx : kSuffixes) {
      std::size_t pos = 0;
      bool hit = false;
      while (!hit && (pos = line.find(sfx, pos)) != std::string::npos) {
        std::size_t end = pos + std::string(sfx).size();
        // Whole-identifier tail: `ro_caches_` matches "caches_", `caches_x`
        // does not.
        if (end < line.size() && !ident_char(line[end])) {
          std::size_t p = end;
          while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
          const bool member = p < line.size() && (line[p] == '[' || line[p] == '.' ||
                                                  (line[p] == '-' && p + 1 < line.size() &&
                                                   line[p + 1] == '>'));
          if (member) {
            std::size_t begin = pos;
            while (begin > 0 && ident_char(line[begin - 1])) --begin;
            add_finding(out, ctx, static_cast<int>(i + 1), "cross-node-state",
                        "direct access to node-keyed state container '" +
                            line.substr(begin, end - begin) +
                            "' — go through the node-checked accessor or a "
                            "net::Network / msg::Topic edge");
            hit = true;
          }
        }
        pos = end;
      }
    }
  }
}

// --- rule: ambient-node-capture ----------------------------------------------

/// Deferred work (spawned coroutines, scheduled callbacks, topic
/// subscriptions) that default-captures by reference smuggles ambient
/// pointers into events that may run on another node's timeline — exactly
/// the captures that dangle or race once trials execute under per-node
/// event queues. Product code must capture the owning objects explicitly;
/// tests (single simulation, lambda outlives the run) are exempt.
void rule_ambient_node_capture(const FileCtx& ctx, std::vector<Finding>& out) {
  if (!ctx.path_contains("src/")) return;
  static const char* kDeferred[] = {"spawn", "schedule_after", "schedule_at", "subscribe"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (line.find("[&]") == std::string::npos && line.find("[&,") == std::string::npos) {
      continue;
    }
    for (const char* call : kDeferred) {
      if (has_token(line, call, true)) {
        add_finding(out, ctx, static_cast<int>(i + 1), "ambient-node-capture",
                    std::string("deferred work via '") + call +
                        "' default-captures by reference ([&]) — name the captured "
                        "objects so node ownership stays visible");
        break;
      }
    }
  }
}

// --- rule: global-mutable ----------------------------------------------------

/// Namespace-scope mutable state in src/ outside sim/ is shared across
/// every trial in a process (and across sweep worker threads): it breaks
/// trial isolation and is invisible to the per-node ownership model. The
/// scanner walks the blanked source with a brace-kind stack so only
/// declarations at namespace scope are considered; const/constexpr,
/// functions, types and aliases are skipped.
void rule_global_mutable(const FileCtx& ctx, std::vector<Finding>& out) {
  if (!ctx.path_contains("src/") || ctx.path_contains("sim/")) return;

  // Statement-level skip tokens: declarations these introduce are either
  // immutable, types, or not variable definitions at all.
  static const char* kSkip[] = {"const",     "constexpr", "constinit", "consteval",
                                "using",     "typedef",   "extern",    "friend",
                                "template",  "operator",  "namespace", "class",
                                "struct",    "enum",      "union",     "static_assert",
                                "concept",   "requires"};

  std::vector<char> scopes;  // 'n' = namespace, 'b' = type/function/block
  int init_depth = 0;        // inside a brace initializer of the current statement
  std::string stmt;
  int stmt_line = 0;

  auto at_namespace_scope = [&] {
    for (char s : scopes) {
      if (s != 'n') return false;
    }
    return true;
  };
  auto last_nonspace = [](const std::string& s) -> char {
    for (std::size_t p = s.size(); p > 0; --p) {
      if (s[p - 1] != ' ' && s[p - 1] != '\t') return s[p - 1];
    }
    return '\0';
  };
  auto analyze = [&](const std::string& statement, int line) {
    const std::string t = trim(statement);
    if (t.empty()) return;
    // Head of the declaration: everything before the initializer.
    std::size_t cut = t.find_first_of("={");
    const std::string head = trim(cut == std::string::npos ? t : t.substr(0, cut));
    if (head.empty() || head.find('(') != std::string::npos) return;  // function decl
    for (const char* w : kSkip) {
      if (has_token(head, w, false)) return;
    }
    // A variable definition needs a type and a name: at least two
    // identifier tokens in the head.
    int idents = 0;
    bool in_ident = false;
    for (char c : head) {
      if (ident_char(c)) {
        if (!in_ident) ++idents;
        in_ident = true;
      } else {
        in_ident = false;
      }
    }
    if (idents < 2) return;
    // The declared name: last identifier in the head.
    std::size_t e = head.size();
    while (e > 0 && !ident_char(head[e - 1])) --e;
    std::size_t b = e;
    while (b > 0 && ident_char(head[b - 1])) --b;
    add_finding(out, ctx, line, "global-mutable",
                "namespace-scope mutable state '" + head.substr(b, e - b) +
                    "' — shared across trials and sweep workers; move it into the "
                    "Simulator/Experiment or make it constexpr");
  };

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    // Preprocessor lines never open statements and never end with ';'.
    const std::string lt = trim(line);
    if (!lt.empty() && lt[0] == '#') continue;
    for (char c : line) {
      if (init_depth > 0) {
        if (c == '{') ++init_depth;
        if (c == '}') --init_depth;
        stmt.push_back(c);
        continue;
      }
      if (c == '{') {
        const char prev = last_nonspace(stmt);
        if (has_token(stmt, "namespace", false)) {
          scopes.push_back('n');
          stmt.clear();
        } else if (at_namespace_scope() && (ident_char(prev) || prev == '>') &&
                   stmt.find('(') == std::string::npos &&
                   !has_token(stmt, "class", false) && !has_token(stmt, "struct", false) &&
                   !has_token(stmt, "enum", false) && !has_token(stmt, "union", false)) {
          // Brace initializer of a namespace-scope declaration
          // (`std::atomic<bool> g{...};`): part of the statement.
          ++init_depth;
          stmt.push_back(c);
        } else {
          scopes.push_back('b');
          stmt.clear();
        }
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        stmt.clear();
      } else if (c == ';') {
        if (at_namespace_scope()) analyze(stmt, stmt_line);
        stmt.clear();
      } else {
        if (stmt.empty() || trim(stmt).empty()) stmt_line = static_cast<int>(i + 1);
        stmt.push_back(c);
      }
    }
    if (!stmt.empty()) stmt.push_back(' ');  // line break inside a statement
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock", "wall-clock time source outside sim/time.hpp"},
      {"raw-random", "ad-hoc randomness outside sim/random.hpp"},
      {"unordered-iter", "iteration over an unordered container"},
      {"lost-task", "sim::Task created but never awaited/moved/spawned"},
      {"lock-balance", "acquire() with no release() anywhere in the file"},
      {"nodiscard-task", "Task-returning declaration missing [[nodiscard]]"},
      {"sim-shared-across-threads", "OS threads in a file that names sim::Simulator"},
      {"cross-node-state", "direct access to a node-keyed state container"},
      {"ambient-node-capture", "deferred work default-capturing by reference"},
      {"global-mutable", "namespace-scope mutable state in src/ outside sim/"},
  };
  return kRules;
}

std::vector<Finding> lint_source(const std::string& path, const std::string& source) {
  FileCtx ctx;
  ctx.path = path;
  split_and_blank(source, ctx.raw, ctx.code);
  parse_allows(ctx);

  std::vector<Finding> out;
  rule_wall_clock(ctx, out);
  rule_raw_random(ctx, out);
  rule_unordered_iter(ctx, out);
  rule_lost_task(ctx, out);
  rule_lock_balance(ctx, out);
  rule_nodiscard_task(ctx, out);
  rule_sim_shared_across_threads(ctx, out);
  rule_cross_node_state(ctx, out);
  rule_ambient_node_capture(ctx, out);
  rule_global_mutable(ctx, out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".hpp", ".h", ".hh", ".cpp", ".cc", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        const fs::path& fp = entry.path();
        if (kExts.count(fp.extension().string()) == 0) continue;
        bool skip = false;
        for (const auto& part : fp) {
          const std::string s = part.string();
          if (s == ".git" || s.rfind("build", 0) == 0) skip = true;
        }
        if (!skip) files.push_back(fp.string());
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const std::string& f : files) {
    std::vector<Finding> ff = lint_file(f);
    out.insert(out.end(), ff.begin(), ff.end());
  }
  return out;
}

void print_text(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void print_json(std::ostream& os, const std::vector<Finding>& findings) {
  // Versioned envelope (simlint-v2): CI diffs stay stable across simlint
  // upgrades — consumers key on "schema" instead of sniffing the shape.
  os << "{\n\"schema\": \"simlint-v2\",\n\"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ",";
    os << "\n  {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n]") << "\n}\n";
}

void print_fix_suppressions(std::ostream& os, const std::vector<Finding>& findings) {
  // Group rules per (file, line): one merged allow comment per source line.
  std::map<std::pair<std::string, int>, std::set<std::string>> by_line;
  for (const Finding& f : findings) {
    if (f.line <= 0) continue;  // io-error pseudo-findings have no line
    by_line[{f.file, f.line}].insert(f.rule);
  }
  std::string cached_file;
  std::vector<std::string> cached_lines;
  for (const auto& [key, rules_at] : by_line) {
    const auto& [file, line] = key;
    if (file != cached_file) {
      cached_file = file;
      cached_lines.clear();
      std::ifstream in(file, std::ios::binary);
      std::string l;
      while (std::getline(in, l)) cached_lines.push_back(l);
    }
    std::string allow = "simlint:allow(";
    bool first = true;
    for (const std::string& r : rules_at) {
      if (!first) allow += ",";
      allow += r;
      first = false;
    }
    allow += ")";
    os << file << ":" << line << ":\n";
    if (line <= static_cast<int>(cached_lines.size())) {
      const std::string& src = cached_lines[line - 1];
      os << "  - " << src << "\n";
      os << "  + " << src << "  // " << allow << " — <why>\n";
    } else {
      os << "  + // " << allow << " — <why>\n";
    }
  }
}

}  // namespace simlint

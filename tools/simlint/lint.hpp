#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace simlint {

/// One lint finding, anchored to a file/line.
struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The determinism / coroutine-hazard rules (token/heuristic based, no
/// compiler dependency):
///
///  wall-clock      wall-clock time sources (system_clock, gettimeofday, ...)
///                  outside sim/time.hpp — simulated time must come from the
///                  Simulator, or runs stop being reproducible.
///  raw-random      ad-hoc randomness (std::random_device, rand(), mt19937)
///                  outside sim/random.hpp — every draw must come from a
///                  named, seeded RngStream.
///  unordered-iter  iteration over a container declared as unordered_map /
///                  unordered_set — iteration order is unspecified and can
///                  leak into results.
///  lost-task       a sim::Task<...> variable that is never co_awaited,
///                  moved, released, or spawned — lazy tasks that are
///                  dropped silently never run.
///  lock-balance    a file with .acquire( calls and no release( at all —
///                  a lock taken on some path and released on none.
///  nodiscard-task  a Task-returning function declaration without
///                  [[nodiscard]] — discarding a lazy task is the lost-task
///                  bug at the call site.
///  sim-shared-across-threads
///                  std::thread / std::jthread in a file that also names
///                  sim::Simulator — the kernel is single-threaded; the only
///                  sanctioned crossing is core/sweep.cpp, which gives each
///                  worker thread a whole trial (its own Simulator).
///  cross-node-state
///                  direct subscript / member call on a node-keyed state
///                  container (identifiers ending caches_/clients_/queues_)
///                  in component/cache/db code — reaching another node's
///                  object must go through the node-checked accessors or a
///                  net::Network / msg::Topic edge, or per-node event
///                  queues (ROADMAP item 2) would race on it.
///  ambient-node-capture
///                  deferred work (spawn / schedule_at / schedule_after /
///                  subscribe) whose lambda default-captures by reference
///                  ([&]) in src/ — ambient references smuggled into events
///                  that may run on another node's timeline.
///  global-mutable  namespace-scope mutable state in src/ outside sim/ —
///                  shared across trials and sweep worker threads, breaking
///                  trial isolation (const/constexpr/types/functions are
///                  skipped; scoping uses a brace-kind stack).
///
/// Suppressions: `// simlint:allow(rule1,rule2)` on the finding's line or
/// the line directly above suppresses those rules there;
/// `// simlint:allow-file(rule)` anywhere suppresses a rule for the whole
/// file.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lints one in-memory translation unit. `path` participates in path-based
/// exemptions (sim/random.hpp, sim/time.hpp) and is echoed in findings.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& source);

/// Lints one file on disk.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path);

/// Lints files and directories (recursing into .hpp/.h/.cpp/.cc files).
[[nodiscard]] std::vector<Finding> lint_paths(const std::vector<std::string>& paths);

/// "file:line: [rule] message" per finding.
void print_text(std::ostream& os, const std::vector<Finding>& findings);

/// Machine-readable report (schema "simlint-v2"): an object
/// {"schema": "simlint-v2", "findings": [{file, line, rule, message}, ...]}.
void print_json(std::ostream& os, const std::vector<Finding>& findings);

/// Dry-run suppression helper: for each finding prints the source line (read
/// from disk) and the same line with the exact trailing
/// `// simlint:allow(rule, ...)` comment to paste, merging rules that hit
/// the same line. Nothing is modified.
void print_fix_suppressions(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace simlint
